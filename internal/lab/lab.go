// Package lab orchestrates emulation experiments: it instantiates a
// topology on the emulator, installs workloads, runs for a configured
// duration, and exports the external observations (for the inference
// algorithm), the ground truth (for scoring), and queue traces (for
// Figure 11). The concrete experiment definitions of the paper's
// evaluation — Table 2's nine topology-A sets and the topology-B run — are
// built on top.
package lab

import (
	"context"
	"fmt"

	"neutrality/internal/emu"
	"neutrality/internal/graph"
	"neutrality/internal/measure"
	"neutrality/internal/runner"
	"neutrality/internal/stats"
	"neutrality/internal/workload"
)

// Experiment is a fully specified emulation run.
type Experiment struct {
	Name string
	Net  *graph.Network
	// Links configures every link of Net.
	Links map[graph.LinkID]emu.LinkConfig
	// RTTs assigns the base round-trip time of every path.
	RTTs emu.PathRTT
	// Loads is the traffic specification.
	Loads []workload.PathLoad
	// Duration is the simulated run length in seconds (paper: 600).
	Duration float64
	// Interval is the measurement interval in seconds (paper: 0.1).
	Interval float64
	// Warmup discards the first seconds of measurements while TCP ramps
	// up (not part of the paper's description; exposed for tests).
	Warmup float64
	// Seed drives all randomness of the run.
	Seed int64
	// MeasuredPaths restricts exported measurements (nil = all paths).
	MeasuredPaths []graph.PathID
	// TraceLinks enables queue-occupancy sampling on the given links.
	TraceLinks []graph.LinkID
	// TraceInterval is the queue sampling period (default 1 s).
	TraceInterval float64
	// DelayFactor, when > 0, enables latency-based observations (the
	// Section 7 latency-metric extension): a packet is late when its
	// one-way delay exceeds the path's neutral delay envelope —
	// propagation + transmission + DelayFactor × the worst-case main-queue
	// residence. 1 is the exact envelope.
	DelayFactor float64
}

// Result is the outcome of one emulation run.
type Result struct {
	Experiment *Experiment
	Sim        *emu.Sim
	Net        *emu.Network
	Collector  *emu.Collector
	Runner     *workload.Runner
	// Meas are the external observations over the measured paths
	// (renumbered 0..n-1 in MeasuredPaths order).
	Meas *measure.Measurements
	// DelayMeas are the latency-based observations (nil unless the
	// experiment set DelayFactor > 1): Sent = delivered, Lost = late.
	DelayMeas *measure.Measurements
}

// Run executes the experiment.
func Run(e *Experiment) (*Result, error) {
	return RunCtx(context.Background(), e)
}

// RunCtx executes the experiment under a cancellable context: the
// emulation polls ctx between event batches (see emu.Sim.RunCtx) and
// aborts mid-run with the context's error when it is cancelled, so an
// interrupted batch or sweep stops within milliseconds instead of
// draining every in-flight run to completion.
func RunCtx(ctx context.Context, e *Experiment) (*Result, error) {
	if e.Duration <= 0 {
		return nil, fmt.Errorf("lab: experiment %q has no duration", e.Name)
	}
	if e.Interval <= 0 {
		e.Interval = 0.1
	}
	sim := emu.NewSim()
	net, err := emu.Build(sim, e.Net, e.Links, e.RTTs)
	if err != nil {
		return nil, fmt.Errorf("lab: %s: %w", e.Name, err)
	}
	col := emu.NewCollector(net, e.Interval)
	ti := e.TraceInterval
	if ti <= 0 {
		ti = 1.0
	}
	for _, l := range e.TraceLinks {
		col.TraceQueue(net, l, ti)
	}
	if e.DelayFactor > 0 {
		if err := col.EnableDelayTracking(net, e.DelayFactor); err != nil {
			return nil, fmt.Errorf("lab: %s: %w", e.Name, err)
		}
	}
	rng := stats.NewRand(e.Seed)
	runner, err := workload.NewRunner(net, e.Loads, rng)
	if err != nil {
		return nil, fmt.Errorf("lab: %s: %w", e.Name, err)
	}
	if err := sim.RunCtx(ctx, e.Duration); err != nil {
		return nil, fmt.Errorf("lab: %s interrupted: %w", e.Name, err)
	}

	meas := col.Measurements(e.Duration, e.MeasuredPaths)
	var delayMeas *measure.Measurements
	if e.DelayFactor > 0 {
		delayMeas, err = col.DelayMeasurements(e.Duration, e.MeasuredPaths)
		if err != nil {
			return nil, err
		}
	}
	if e.Warmup > 0 {
		skip := int(e.Warmup / e.Interval)
		if skip < meas.Intervals() {
			meas.Sent = meas.Sent[skip:]
			meas.Lost = meas.Lost[skip:]
		}
		if delayMeas != nil && skip < delayMeas.Intervals() {
			delayMeas.Sent = delayMeas.Sent[skip:]
			delayMeas.Lost = delayMeas.Lost[skip:]
		}
	}
	return &Result{
		Experiment: e,
		Sim:        sim,
		Net:        net,
		Collector:  col,
		Runner:     runner,
		Meas:       meas,
		DelayMeas:  delayMeas,
	}, nil
}

// RunBatch executes independent experiments across a bounded worker
// pool (workers <= 0 means one per CPU) and returns the results in
// input order (results[i] belongs to exps[i]; the runner pool
// guarantees index order regardless of completion order). Each
// experiment is self-seeding (Experiment.Seed), so the batch output is
// identical for every worker count. The first failing experiment
// cancels dispatch of the remaining ones and aborts the in-flight
// runs; cancelling ctx does the same.
func RunBatch(ctx context.Context, workers int, exps []*Experiment) ([]*Result, error) {
	return runner.Map(ctx, workers, len(exps), func(uctx context.Context, i int) (*Result, error) {
		return RunCtx(uctx, exps[i])
	})
}

// GroundTruth exposes the collector's per-link per-path congestion
// probabilities for the run.
func (r *Result) GroundTruth(lossThreshold float64) []emu.LinkClassTruth {
	return r.Collector.GroundTruth(r.Net, r.Experiment.Duration, lossThreshold)
}
