package lab

import (
	"testing"

	"neutrality/internal/core"
	"neutrality/internal/emu"
	"neutrality/internal/graph"
	"neutrality/internal/measure"
	"neutrality/internal/topo"
)

// deepShaper builds a topology-A experiment where class c2 is shaped with
// a very deep queue: sustained overload turns into queueing delay instead
// of loss — the differentiation the loss-frequency metric cannot see.
func deepShaperParams() ParamsA {
	p := DefaultParamsA().Scale(0.1, 90)
	p.MeanFlowMb = [2]float64{100, 100} // persistent flows
	p.Diff = &emu.Differentiation{
		Kind:             emu.Shape,
		Rate:             map[graph.ClassID]float64{topo.C2: 0.3},
		ShaperQueueBytes: 4 << 20, // ~2800 packets: pure bufferbloat
	}
	return p
}

// TestDelayMetricSeesBufferedDifferentiation is the Section 7 latency
// extension at work: with a deep shaper queue, class-2 traffic is delayed
// rather than dropped, so the loss view is actively misleading (the
// unshaped class competes in the main drop-tail queue and loses *more*),
// while the latency view exposes exactly the shaped class.
func TestDelayMetricSeesBufferedDifferentiation(t *testing.T) {
	p := deepShaperParams()
	e, a := p.Experiment("deep-shaper")
	e.DelayFactor = 1
	run, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}

	// Loss view: class-2 packets are delayed, not dropped. The loss
	// metric must NOT show the shaped class as the clear loser.
	lossProbs := measure.PathCongestionProb(run.Meas, 0.01)
	t.Logf("loss-based congestion: %v", lossProbs)
	lossC1 := (lossProbs[0] + lossProbs[1]) / 2
	lossC2 := (lossProbs[2] + lossProbs[3]) / 2
	if lossC2 > 2*lossC1 {
		t.Fatalf("scenario broken: loss metric already exposes the shaper (c1=%v c2=%v)", lossC1, lossC2)
	}

	// Delay view: class-2 paths are late in most intervals.
	lateProbs := measure.PathCongestionProb(run.DelayMeas, 0.01)
	t.Logf("delay-based congestion: %v", lateProbs)
	c1 := (lateProbs[0] + lateProbs[1]) / 2
	c2 := (lateProbs[2] + lateProbs[3]) / 2
	if c2 < 2*c1 || c2 < 0.3 {
		t.Fatalf("delay metric should expose the shaped class: c1=%v c2=%v", c1, c2)
	}

	// The standard inference pipeline over the delay observations flags
	// the shared link.
	res := core.Infer(a.Net, core.MeasurementObserver{Meas: run.DelayMeas, Opts: measure.DefaultOptions()}, core.DefaultConfig())
	if !res.NetworkNonNeutral() {
		t.Fatalf("delay-based inference missed the buffered shaper:\n%s", core.Report(res))
	}
	flagged := res.NonNeutralSeqs()
	if len(flagged) != 1 || flagged[0].Slice.Seq[0] != a.Shared {
		t.Fatalf("expected <l5>:\n%s", core.Report(res))
	}
}

// TestDelayMetricNeutralStaysQuiet: the latency pipeline does not invent
// violations on a neutral (but loaded) dumbbell.
func TestDelayMetricNeutralStaysQuiet(t *testing.T) {
	p := DefaultParamsA().Scale(0.1, 90)
	p.MeanFlowMb = [2]float64{4, 4}
	e, a := p.Experiment("delay-neutral")
	e.DelayFactor = 1
	run, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Infer(a.Net, core.MeasurementObserver{Meas: run.DelayMeas, Opts: measure.DefaultOptions()}, core.DefaultConfig())
	if res.NetworkNonNeutral() {
		t.Fatalf("delay-based false positive:\n%s", core.Report(res))
	}
}

// TestDelayTrackingValidation: configuration errors are reported.
func TestDelayTrackingValidation(t *testing.T) {
	b := graph.NewBuilder()
	s := b.Host("s")
	d := b.Host("d")
	b.Link("l", s, d)
	b.Path("p", 0, "l")
	g := b.MustBuild()
	sim := emu.NewSim()
	l, _ := g.LinkByName("l")
	net, err := emu.Build(sim, g, map[graph.LinkID]emu.LinkConfig{l.ID: {Capacity: 1e6, Delay: 0.001}}, emu.PathRTT{0: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	col := emu.NewCollector(net, 0.1)
	if err := col.EnableDelayTracking(net, 0); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if _, err := col.DelayMeasurements(1, nil); err == nil {
		t.Fatal("export without tracking accepted")
	}
	if err := col.EnableDelayTracking(net, 3); err != nil {
		t.Fatal(err)
	}
	if err := col.EnableDelayTracking(net, 3); err == nil {
		t.Fatal("double enable accepted")
	}
	_ = topo.C1
}
