package lab

import (
	"neutrality/internal/emu"
	"neutrality/internal/graph"
	"neutrality/internal/topo"
	"neutrality/internal/workload"
)

// ParamsB are the knobs of the topology-B experiment (Section 6.4).
type ParamsB struct {
	// BackboneBps is the capacity of backbone/ingress/egress links;
	// host access links get 10×.
	BackboneBps float64
	// PoliceRate is the fraction of capacity the three policers grant
	// class c2.
	PoliceRate float64
	// RTTSec is the base RTT of every path.
	RTTSec float64
	// Table 3 flow sizes in Mb. Dark hosts run one slot per entry of
	// DarkSizesMb; light hosts one slot per entry of LightSizesMb; white
	// hosts one slot per entry of WhiteSizesMb.
	DarkSizesMb, LightSizesMb, WhiteSizesMb []float64
	GapMeanSec                              float64
	DurationSec, IntervalSec                float64
	Seed                                    int64
}

// DefaultParamsB mirrors Table 3 with two documented deviations: light
// hosts run three parallel 10 Gb flows instead of one, and the policers
// grant class c2 20 % of capacity. With a single long flow per light path,
// policer loss events are too sparse for two policed paths to congest
// within the same 100 ms interval, and the pathset correlations the
// algorithm relies on (Observable Violation #2) never materialize — the
// same reasoning behind the 12-parallel-flow default of topology A. The
// paper does not state a policing rate for topology B; 20 % sits inside
// its Table 1 range.
func DefaultParamsB() ParamsB {
	return ParamsB{
		BackboneBps:  100e6,
		PoliceRate:   0.2,
		RTTSec:       0.05,
		DarkSizesMb:  []float64{1, 10, 40},
		LightSizesMb: []float64{10000, 10000, 10000},
		WhiteSizesMb: []float64{1, 10, 40, 10000},
		GapMeanSec:   10,
		DurationSec:  600,
		IntervalSec:  0.1,
		Seed:         1,
	}
}

// Scale shrinks capacity and flow sizes together and shortens the run,
// preserving the experiment's shape (see ParamsA.Scale).
func (p ParamsB) Scale(factor, durationSec float64) ParamsB {
	p.BackboneBps *= factor
	p.DarkSizesMb = scaleAll(p.DarkSizesMb, factor)
	p.LightSizesMb = scaleAll(p.LightSizesMb, factor)
	p.WhiteSizesMb = scaleAll(p.WhiteSizesMb, factor)
	p.DurationSec = durationSec
	return p
}

func scaleAll(v []float64, f float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = scaleFlowMb(x, f)
	}
	return out
}

// Experiment materializes the topology-B run.
func (p ParamsB) Experiment(name string) (*Experiment, *topo.TopologyB) {
	b := topo.NewTopologyB()
	n := b.Net

	policed := graph.NewLinkSet(b.Policers...)
	links := map[graph.LinkID]emu.LinkConfig{}
	const edgeDelay = 0.001
	for i := 0; i < n.NumLinks(); i++ {
		id := graph.LinkID(i)
		cfg := emu.LinkConfig{Capacity: p.BackboneBps, Delay: edgeDelay}
		if isHostAccess(n, id) {
			cfg.Capacity = p.BackboneBps * 10
		}
		if policed.Contains(id) {
			cfg.Diff = &emu.Differentiation{
				Kind: emu.Police,
				Rate: map[graph.ClassID]float64{topo.C2: p.PoliceRate},
			}
		}
		links[id] = cfg
	}

	rtts := emu.PathRTT{}
	for i := 0; i < n.NumPaths(); i++ {
		rtts[graph.PathID(i)] = p.RTTSec
	}

	var loads []workload.PathLoad
	slotSet := func(sizes []float64) []workload.Slot {
		slots := make([]workload.Slot, len(sizes))
		for i, mb := range sizes {
			slots[i] = workload.Slot{Size: workload.FixedSize(mb), GapMean: p.GapMeanSec, CC: "cubic"}
		}
		return slots
	}
	for _, pid := range b.DarkPaths {
		loads = append(loads, workload.PathLoad{Path: pid, Slots: slotSet(p.DarkSizesMb)})
	}
	for _, pid := range b.LightPaths {
		loads = append(loads, workload.PathLoad{Path: pid, Slots: slotSet(p.LightSizesMb)})
	}
	for _, pid := range b.Background {
		loads = append(loads, workload.PathLoad{Path: pid, Slots: slotSet(p.WhiteSizesMb)})
	}

	return &Experiment{
		Name:          name,
		Net:           n,
		Links:         links,
		RTTs:          rtts,
		Loads:         loads,
		Duration:      p.DurationSec,
		Interval:      p.IntervalSec,
		Seed:          p.Seed,
		MeasuredPaths: b.Measured,
	}, b
}

// isHostAccess reports whether a link touches an end-host.
func isHostAccess(n *graph.Network, id graph.LinkID) bool {
	l := n.Link(id)
	return n.Node(l.From).Kind == graph.EndHost || n.Node(l.To).Kind == graph.EndHost
}
