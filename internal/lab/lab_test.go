package lab

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"neutrality/internal/core"
	"neutrality/internal/graph"
	"neutrality/internal/measure"
	"neutrality/internal/topo"
)

// quickParams returns a scaled-down topology-A configuration: 10 Mbps
// bottleneck, 90 s run — enough intervals (900) for stable congestion
// probabilities while keeping the test fast.
func quickParams() ParamsA {
	p := DefaultParamsA()
	return p.Scale(0.1, 90)
}

func runSpec(t *testing.T, p ParamsA, name string) (*Result, *topo.TopologyA) {
	t.Helper()
	e, a := p.Experiment(name)
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func inferVerdict(t *testing.T, res *Result, a *topo.TopologyA) *core.Result {
	t.Helper()
	obs := core.MeasurementObserver{Meas: res.Meas, Opts: measure.DefaultOptions()}
	return core.Infer(a.Net, obs, core.DefaultConfig())
}

// TestNeutralDumbbell: experiment-set-1 style run (no differentiation,
// heavily asymmetric flow sizes across classes) must not trigger a
// violation verdict.
func TestNeutralDumbbell(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{0.1, 100} // 1 Mb vs 1 Gb at scale 0.1
	res, a := runSpec(t, p, "neutral-asymmetric")
	infer := inferVerdict(t, res, a)
	if infer.NetworkNonNeutral() {
		t.Fatalf("false positive on neutral dumbbell:\n%s", core.Report(infer))
	}
}

// TestPolicedDumbbell: a policing shared link must be detected and
// localized to <l5>.
func TestPolicedDumbbell(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{100, 100} // persistent flows both classes
	p.Diff = PoliceClass2(0.3)
	res, a := runSpec(t, p, "policed")
	infer := inferVerdict(t, res, a)
	if !infer.NetworkNonNeutral() {
		t.Fatalf("policing missed:\n%s", core.Report(infer))
	}
	flagged := infer.NonNeutralSeqs()
	if len(flagged) != 1 || len(flagged[0].Slice.Seq) != 1 || flagged[0].Slice.Seq[0] != a.Shared {
		t.Fatalf("flagged %v, want exactly <l5>", core.Report(infer))
	}
	m := core.Evaluate(infer, []coreLinkID{a.Shared})
	if m.FalseNegativeRate != 0 || m.FalsePositiveRate != 0 || m.Granularity != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

// TestShapedDumbbell: shaping (buffering, not dropping) is also detected,
// because sustained overload still forces shaper-queue drops and loss
// events concentrate on the shaped class.
func TestShapedDumbbell(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{100, 100}
	p.Diff = ShapeBothClasses(0.3)
	res, a := runSpec(t, p, "shaped")
	infer := inferVerdict(t, res, a)
	if !infer.NetworkNonNeutral() {
		t.Fatalf("shaping missed:\n%s", core.Report(infer))
	}
}

// TestShaping50PercentDetectedAsJointDifferentiation documents the one
// deliberate divergence from the paper's Figure 8(i): at shaping rate
// R = 0.5 both classes receive the same marginal treatment (equal
// congestion probabilities — asserted below), and the paper classifies the
// link as neutral. Our algorithm still flags it, because the link serves
// each class from a dedicated queue: same-class path pairs congest
// together while cross-class pairs congest independently, and the pair
// estimates of System 4 expose exactly that joint difference. The paper's
// own Section 7 ("correlated performance classes", type (b) links)
// anticipates separate-queue links needing parallel virtual links — under
// that extended model the R = 0.5 link is genuinely distinguishable from a
// single-queue neutral link. See DESIGN.md.
func TestShaping50PercentDetectedAsJointDifferentiation(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{100, 100}
	p.Diff = ShapeBothClasses(0.5)
	res, a := runSpec(t, p, "shaped-50")

	// Marginals are equal (the paper's observation)…
	probs := measure.PathCongestionProb(res.Meas, 0.01)
	c1 := (probs[0] + probs[1]) / 2
	c2 := (probs[2] + probs[3]) / 2
	ratio := c2 / c1
	if ratio < 0.6 || ratio > 1.6 {
		t.Fatalf("marginals should be equal at R=0.5: c1=%v c2=%v", c1, c2)
	}
	// …but the joint structure differs, and the algorithm sees it.
	infer := inferVerdict(t, res, a)
	if !infer.NetworkNonNeutral() {
		t.Fatalf("separate-queue equal shaping not flagged:\n%s", core.Report(infer))
	}
}

// TestCongestionProbabilityShape: in the policing run, class-2 paths must
// be congested far more often than class-1 paths (the Fig. 8(d–f) shape).
func TestCongestionProbabilityShape(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{2, 2} // 20 Mb at full scale: moderate load
	p.Diff = PoliceClass2(0.3)
	res, _ := runSpec(t, p, "policed-shape")
	probs := measure.PathCongestionProb(res.Meas, 0.01)
	c1 := (probs[0] + probs[1]) / 2
	c2 := (probs[2] + probs[3]) / 2
	if c2 < 2*c1 || c2 < 0.05 {
		t.Fatalf("congestion probabilities c1=%v c2=%v; want c2 >> c1", c1, c2)
	}
}

// TestNeutralCongestionUniform: without differentiation, all four paths
// see similar congestion (the Fig. 8(a–c) shape).
func TestNeutralCongestionUniform(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{40, 40} // enough load to congest l5
	res, _ := runSpec(t, p, "neutral-uniform")
	probs := measure.PathCongestionProb(res.Meas, 0.01)
	lo, hi := probs[0], probs[0]
	for _, v := range probs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 3*lo+0.05 {
		t.Fatalf("uneven congestion on neutral link: %v", probs)
	}
}

// TestDeterministicRuns: identical seeds give identical measurements.
func TestDeterministicRuns(t *testing.T) {
	p := quickParams()
	p.DurationSec = 30
	p.Diff = PoliceClass2(0.3)
	r1, _ := runSpec(t, p, "det-1")
	r2, _ := runSpec(t, p, "det-2")
	if r1.Meas.Intervals() != r2.Meas.Intervals() {
		t.Fatal("interval counts differ")
	}
	for ti := 0; ti < r1.Meas.Intervals(); ti++ {
		for pi := range r1.Meas.Sent[ti] {
			if r1.Meas.Sent[ti][pi] != r2.Meas.Sent[ti][pi] || r1.Meas.Lost[ti][pi] != r2.Meas.Lost[ti][pi] {
				t.Fatalf("divergence at interval %d path %d", ti, pi)
			}
		}
	}
}

// TestTableTwoSpecs: structural checks of the experiment-set definitions.
func TestTableTwoSpecs(t *testing.T) {
	counts := map[int]int{1: 4, 2: 4, 3: 2, 4: 4, 5: 4, 6: 4, 7: 4, 8: 4, 9: 4}
	total := 0
	for set, want := range counts {
		specs, err := TableTwo(set)
		if err != nil {
			t.Fatal(err)
		}
		if len(specs) != want {
			t.Fatalf("set %d has %d specs, want %d", set, len(specs), want)
		}
		total += len(specs)
		for _, s := range specs {
			neutralSet := set <= 3
			if neutralSet && (s.Params.Diff != nil || s.NonNeutral) {
				t.Fatalf("set %d spec %q should be neutral", set, s.Label)
			}
			if !neutralSet && s.Params.Diff == nil {
				t.Fatalf("set %d spec %q missing differentiation", set, s.Label)
			}
		}
	}
	if total != 34 {
		t.Fatalf("Table 2 total %d experiments", total)
	}
	// Set 9's 50 % experiment is the only differentiating spec expected
	// to look neutral.
	specs, _ := TableTwo(9)
	if specs[0].NonNeutral || !specs[1].NonNeutral {
		t.Fatal("set 9 NonNeutral annotations wrong")
	}
	if _, err := TableTwo(10); err == nil {
		t.Fatal("set 10 accepted")
	}
}

// TestWarmupTrimsIntervals: warmup shortens the exported measurements.
func TestWarmupTrimsIntervals(t *testing.T) {
	p := quickParams()
	p.DurationSec = 30
	e, _ := p.Experiment("warmup")
	e.Warmup = 10
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Meas.Intervals(); got != 200 {
		t.Fatalf("intervals = %d, want 200 (30 s − 10 s at 100 ms)", got)
	}
}

// TestQueueTraceRecorded: Figure 11 machinery.
func TestQueueTraceRecorded(t *testing.T) {
	p := quickParams()
	p.DurationSec = 30
	p.MeanFlowMb = [2]float64{100, 100}
	e, a := p.Experiment("trace")
	e.TraceLinks = []coreLinkID{a.Shared}
	res, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Collector.Trace(a.Shared)
	if tr == nil || len(tr.Times) < 25 {
		t.Fatalf("trace missing or short: %+v", tr)
	}
	nonZero := 0
	for _, b := range tr.Bytes {
		if b > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("bottleneck queue never occupied under persistent load")
	}
}

// TestGroundTruthSeparatesClasses: the collector's per-link per-path
// congestion probabilities (Fig. 10(a) machinery) show the policer's gap.
func TestGroundTruthSeparatesClasses(t *testing.T) {
	p := quickParams()
	p.MeanFlowMb = [2]float64{2, 2} // 20 Mb at full scale: moderate load
	p.Diff = PoliceClass2(0.3)
	res, a := runSpec(t, p, "gt")
	gt := res.GroundTruth(0.01)
	shared := gt[a.Shared]
	c1 := (shared.Prob(a.Paths[0]) + shared.Prob(a.Paths[1])) / 2
	c2 := (shared.Prob(a.Paths[2]) + shared.Prob(a.Paths[3])) / 2
	if c2 < 2*c1 || c2 < 0.05 {
		t.Fatalf("ground truth gap missing: c1=%v c2=%v", c1, c2)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(&Experiment{Name: "no-duration"}); err == nil {
		t.Fatal("zero duration accepted")
	}
}

// TestRunBatchMatchesSerial: a parallel batch returns the same
// measurements, in input order, as serial Run calls.
func TestRunBatchMatchesSerial(t *testing.T) {
	mkExp := func(seed int64) *Experiment {
		p := quickParams()
		p.DurationSec = 15
		p.Diff = PoliceClass2(0.3)
		p.Seed = seed
		e, _ := p.Experiment("batch")
		return e
	}
	var want []*Result
	for _, seed := range []int64{1, 2, 3} {
		r, err := Run(mkExp(seed))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	for _, workers := range []int{1, 2, 0} {
		got, err := RunBatch(context.Background(), workers, []*Experiment{mkExp(1), mkExp(2), mkExp(3)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range want {
			if got[i].Experiment.Seed != want[i].Experiment.Seed {
				t.Fatalf("workers=%d: result %d out of order", workers, i)
			}
			for ti := 0; ti < want[i].Meas.Intervals(); ti++ {
				for pi := range want[i].Meas.Sent[ti] {
					if got[i].Meas.Sent[ti][pi] != want[i].Meas.Sent[ti][pi] ||
						got[i].Meas.Lost[ti][pi] != want[i].Meas.Lost[ti][pi] {
						t.Fatalf("workers=%d: run %d diverged from serial at interval %d path %d",
							workers, i, ti, pi)
					}
				}
			}
		}
	}
}

// TestRunBatchError: a failing experiment surfaces as a batch error
// naming its unit.
func TestRunBatchError(t *testing.T) {
	p := quickParams()
	p.DurationSec = 10
	ok, _ := p.Experiment("ok")
	_, err := RunBatch(context.Background(), 1, []*Experiment{ok, {Name: "broken"}})
	if err == nil || !strings.Contains(err.Error(), "unit 1") {
		t.Fatalf("err = %v, want unit-1 failure", err)
	}
}

// coreLinkID aliases the graph link ID for test brevity.
type coreLinkID = graph.LinkID

// TestRunCtxCancelsInFlight: cancelling the batch context aborts an
// experiment that is already emulating — the run returns promptly with
// the context error instead of draining the event queue (ISSUE 4
// satellite: cancellation must propagate into in-flight units).
func TestRunCtxCancelsInFlight(t *testing.T) {
	p := quickParams()
	p.DurationSec = 3600 // far more emulated time than the test allows
	p.Seed = 1
	e, _ := p.Experiment("cancel-in-flight")

	ctx, cancel := context.WithCancel(context.Background())
	started := time.Now()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, err := RunBatch(ctx, 1, []*Experiment{e})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The hour-long emulation must not have been drained: aborting
	// within a generous real-time bound proves the cancellation landed
	// mid-run. (The full run takes minutes of real time.)
	if elapsed := time.Since(started); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestTableTwoGridSpec: TableTwo is now a thin expansion of its
// declarative grid specs — the grid's cell count, labels, and
// materialized parameters are the single source of the 34-experiment
// table. (Byte-identity of the resulting Fig 8 output with the
// pre-grid hand-rolled loops is pinned by the figures checksum test.)
func TestTableTwoGridSpec(t *testing.T) {
	totalCells := 0
	for set := 1; set <= 9; set++ {
		g, err := TableTwoGrid(set)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("set %d grid invalid: %v", set, err)
		}
		specs, err := TableTwo(set)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cells() != len(specs) {
			t.Fatalf("set %d: grid has %d cells, TableTwo %d specs", set, g.Cells(), len(specs))
		}
		totalCells += g.Cells()
		for i, spec := range specs {
			if got := g.Cell(i).Value(len(g.Axes) - 1).Label(); got != spec.Label {
				t.Fatalf("set %d cell %d: grid label %q, spec label %q", set, i, got, spec.Label)
			}
		}
	}
	if totalCells != 34 {
		t.Fatalf("Table 2 grids cover %d cells, want the paper's 34", totalCells)
	}
	// Spot-check a materialized cell: set 4's third experiment polices
	// at 30% with 40 Mb flows on both classes.
	specs, _ := TableTwo(4)
	p := specs[2].Params
	if p.MeanFlowMb != [2]float64{40, 40} || p.Diff == nil || p.Diff.Rate[topo.C2] != 0.3 {
		t.Fatalf("set 4 cell 2 params: %+v", p)
	}
}
