package lab

import (
	"fmt"
	"math"

	"neutrality/internal/grid"
)

// Scenario-grid axis names for the topology-A parameter knobs. These
// are the shared vocabulary between the declarative grid specs
// (internal/grid), the experiment definitions in this package
// (TableTwo is expressed with them), and the sweep engine
// (internal/sweep), which layers its own topology/differentiation/
// inference axes on top.
//
// Every applier sets the knob to the axis value verbatim — values are
// absolute, in the units documented on ParamsA; no rescaling happens
// here. Grids that run at a reduced scale either scale their base
// params first (the sweep engine scales before applying axes) or keep
// paper-scale values and scale afterwards (TableTwo's callers).

// ApplyAxisA applies one named grid axis to the topology-A parameters.
// It reports whether the axis names a ParamsA knob at all; unknown
// axes return (false, nil) so callers can layer additional axes on
// top. A known axis with an out-of-domain value returns an error.
func ApplyAxisA(p *ParamsA, name string, v grid.Value) (bool, error) {
	num := func() (float64, error) {
		if !v.IsNum {
			return 0, fmt.Errorf("lab: axis %q needs a numeric value, got %q", name, v.Str)
		}
		return v.Num, nil
	}
	positive := func() (float64, error) {
		f, err := num()
		if err == nil && f <= 0 {
			return 0, fmt.Errorf("lab: axis %q value %g must be > 0", name, f)
		}
		return f, err
	}
	cca := func() (string, error) {
		if v.IsNum {
			return "", fmt.Errorf("lab: axis %q needs a string value", name)
		}
		switch v.Str {
		case "cubic", "newreno":
			return v.Str, nil
		}
		return "", fmt.Errorf("lab: axis %q: unknown congestion controller %q", name, v.Str)
	}

	switch name {
	case "flows":
		f, err := num()
		if err != nil {
			return true, err
		}
		if f < 1 || f != math.Trunc(f) {
			return true, fmt.Errorf("lab: axis %q value %g must be a positive integer", name, f)
		}
		p.FlowsPerPath = int(f)
	case "rtt":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.RTTSec = [2]float64{f, f}
	case "c2rtt":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.RTTSec[1] = f
	case "flowmb":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.MeanFlowMb = [2]float64{f, f}
	case "c1mb":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.MeanFlowMb[0] = f
	case "c2mb":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.MeanFlowMb[1] = f
	case "cca":
		s, err := cca()
		if err != nil {
			return true, err
		}
		p.CCA = [2]string{s, s}
	case "c2cca":
		s, err := cca()
		if err != nil {
			return true, err
		}
		p.CCA[1] = s
	case "gap":
		f, err := num()
		if err != nil {
			return true, err
		}
		if f < 0 {
			return true, fmt.Errorf("lab: axis %q value %g must be >= 0", name, f)
		}
		p.GapMeanSec = f
	case "interval":
		f, err := positive()
		if err != nil {
			return true, err
		}
		p.IntervalSec = f
	default:
		return false, nil
	}
	return true, nil
}
