package neutrality

import (
	"context"

	"neutrality/internal/fleet"
	"neutrality/internal/sweep"
)

// Fleet orchestration, re-exported from internal/fleet: a
// fault-tolerant layer over the distributed sweep that owns a grid's
// partition assignments and hands them to workers under time-bounded
// leases, with heartbeat-driven expiry, exponential backoff with
// seeded jitter, speculative re-dispatch of stragglers (first valid
// completion wins — safe because partition artifacts are
// byte-identical by construction), checkpoint salvage across worker
// deaths, and graceful degradation to aggregate-only results when
// shard files are unrecoverable. See the `neutrality fleet`
// subcommands for the CLI workflow.
type (
	// FleetConfig parameterizes an orchestrator (partitions, lease TTL,
	// backoff, speculation threshold, attempt budget).
	FleetConfig = fleet.Config
	// FleetOrchestrator owns the assignment state of one fleet.
	FleetOrchestrator = fleet.Orchestrator
	// FleetAssignment is one leased unit of work.
	FleetAssignment = fleet.Assignment
	// FleetWorkerResult is a completed partition report.
	FleetWorkerResult = fleet.WorkerResult
	// FleetTransport carries the worker protocol (local or HTTP).
	FleetTransport = fleet.Transport
	// FleetWorkerOptions configures one worker loop.
	FleetWorkerOptions = fleet.WorkerOptions
	// FleetLocalOptions configures RunFleetLocal.
	FleetLocalOptions = fleet.LocalOptions
	// FleetResult is a committed fleet run.
	FleetResult = fleet.Result
	// FleetStatus is a point-in-time fleet snapshot.
	FleetStatus = fleet.Status
	// FleetServer exposes an orchestrator over HTTP.
	FleetServer = fleet.Server
	// FleetClient implements the transport over HTTP.
	FleetClient = fleet.Client
)

// Fleet protocol sentinels (errors.Is-matchable through transports).
var (
	ErrFleetDone       = fleet.ErrDone
	ErrFleetNoWork     = fleet.ErrNoWork
	ErrFleetStaleLease = fleet.ErrStaleLease
	ErrFleetSuperseded = fleet.ErrSuperseded
	ErrFleetFailed     = fleet.ErrFleetFailed
)

// Sweep error kinds, for branching on failure modes (and the CLI's
// exit-code contract) without parsing messages:
// ErrSweepIncomplete tags resumable-incomplete conditions (unfinished
// partitions, coverage gaps, per-cell timeouts); ErrSweepValidation
// tags spec/artifact mismatches that rerunning cannot fix.
// ErrSweepCorrupt additionally tags artifact-corruption findings
// (failed record CRCs, shard hash mismatches, destroyed manifests);
// it wraps ErrSweepValidation, so existing errors.Is branches — and
// the CLI's validation exit code — keep matching.
var (
	ErrSweepIncomplete = sweep.ErrIncomplete
	ErrSweepValidation = sweep.ErrValidation
	ErrSweepCorrupt    = sweep.ErrCorrupt
)

// NewFleet builds an orchestrator for the grid.
func NewFleet(g *Grid, cfg FleetConfig) (*FleetOrchestrator, error) { return fleet.New(g, cfg) }

// NewFleetServer wraps an orchestrator in the HTTP protocol handler.
func NewFleetServer(o *FleetOrchestrator) *FleetServer { return fleet.NewServer(o) }

// FleetWork runs a worker loop against a fleet transport until the
// fleet finishes, fails, or ctx ends.
func FleetWork(ctx context.Context, g *Grid, tr FleetTransport, opt FleetWorkerOptions) error {
	return fleet.Work(ctx, g, tr, opt)
}

// RunFleetLocal runs a whole fleet in one process — orchestrator plus
// in-process workers over the shared-directory transport — and commits
// the merged, byte-identical single-run artifacts.
func RunFleetLocal(ctx context.Context, g *Grid, opt FleetLocalOptions) (*FleetResult, error) {
	return fleet.RunLocal(ctx, g, opt)
}
