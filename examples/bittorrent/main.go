// BitTorrent: the paper's Section 7 "path versus flow differentiation"
// scenario. The algorithm defines non-neutrality over *paths*, yet real
// ISPs throttle by *traffic type* (e.g. BitTorrent). The paper argues the
// two coincide in practice: content-provider paths carry no BitTorrent,
// peer-to-peer paths do, so a link that throttles BitTorrent effectively
// throttles the P2P paths — and path-level inference catches it.
//
// This example models exactly that: a transit link carries both
// CDN-to-user paths (no BitTorrent, class c1) and user-to-user paths
// (mixed traffic including BitTorrent, class c2). The link deep-packet
// inspects and throttles only the BitTorrent share — modeled as the
// class-c2 paths losing a fraction of intervals proportional to their
// BitTorrent content.
//
// Run with: go run ./examples/bittorrent
package main

import (
	"fmt"
	"log"

	"neutrality"
)

func main() {
	// Topology: CDN and users on the left, users on the right, one
	// transit link in the middle doing DPI-based throttling.
	b := neutrality.NewBuilder()
	cdn := b.Host("cdn")
	u1 := b.Host("user1")
	u2 := b.Host("user2")
	in := b.Relay("ingress")
	out := b.Relay("egress")
	u3 := b.Host("user3")
	u4 := b.Host("user4")
	u5 := b.Host("user5")

	b.Link("a-cdn", cdn, in)
	b.Link("a-u1", u1, in)
	b.Link("a-u2", u2, in)
	b.Link("transit", in, out) // the DPI/throttling link
	b.Link("e-u3", out, u3)
	b.Link("e-u4", out, u4)
	b.Link("e-u5", out, u5)

	// Class c1: CDN traffic (no BitTorrent). Class c2: peer-to-peer
	// paths whose mix includes BitTorrent.
	b.Path("cdn->u3", neutrality.C1, "a-cdn", "transit", "e-u3")
	b.Path("cdn->u4", neutrality.C1, "a-cdn", "transit", "e-u4")
	b.Path("u1->u4", neutrality.C2, "a-u1", "transit", "e-u4")
	b.Path("u2->u5", neutrality.C2, "a-u2", "transit", "e-u5")
	net, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: the transit link drops BitTorrent bursts — the P2P
	// paths see congestion in ~30 % of intervals, CDN paths in ~2 %
	// (ambient).
	perf := neutrality.NewPerf(net.NumLinks(), net.NumClasses())
	transit, _ := net.LinkByName("transit")
	perf.Set(transit.ID, neutrality.C1, 0.02)
	perf.Set(transit.ID, neutrality.C2, 0.36) // −log(0.70): ~30 % congested

	// The coalition of end-hosts measures for ~17 minutes at 100 ms.
	states := neutrality.NewSampler(net, perf, 99).SampleIntervals(10000)
	meas := neutrality.SyntheticMeasurements(states, neutrality.DefaultSyntheticOptions())
	res := neutrality.InferMeasured(net, meas, neutrality.DefaultMeasureOptions())

	fmt.Println("DPI throttling of BitTorrent, observed as path differentiation:")
	fmt.Print(neutrality.Report(res))
	if !res.NetworkNonNeutral() {
		log.Fatal("throttling not detected")
	}
	for _, v := range res.NonNeutralSeqs() {
		fmt.Printf(">> the throttler hides inside %s\n", v.SeqNames())
	}
	m := neutrality.Evaluate(res, []neutrality.LinkID{transit.ID})
	fmt.Printf("FN %.0f%%, FP %.0f%%, granularity %.1f\n",
		m.FalseNegativeRate*100, m.FalsePositiveRate*100, m.Granularity)
}
