// Tomography: why neutrality inference turns tomography "on its head".
//
// Classic network tomography assumes the network is neutral and tries to
// form solvable systems that locate congested links. This example runs
// Boolean tomography (the paper's reference [22] style) next to the
// neutrality-inference algorithm on the same observations, in two worlds:
//
//  1. A neutral network whose link l3 is genuinely lossy — tomography
//     localizes it perfectly, neutrality inference stays quiet. Both
//     correct.
//  2. The paper's Figure 1 violation (l1 throttles p2's class) —
//     tomography is structurally unable to explain the observations
//     (the congested path's links are all exonerated by congestion-free
//     paths), while neutrality inference pinpoints the non-neutral link.
//
// Run with: go run ./examples/tomography
package main

import (
	"fmt"

	"neutrality"
)

func world(name string, net *neutrality.Network, perf neutrality.Perf) {
	fmt.Printf("=== %s ===\n", name)
	states := neutrality.NewSampler(net, perf, 7).SampleIntervals(8000)

	// Baseline: Boolean tomography under the neutral assumption.
	boolRes := neutrality.BooleanTomography(net, states)
	fmt.Printf("Boolean tomography (%d congested intervals, %d unexplained):\n",
		boolRes.Intervals, boolRes.Unexplained)
	for l, p := range boolRes.BlameProb {
		if p > 0.005 {
			fmt.Printf("  blames %-4s in %5.1f%% of congested intervals\n",
				net.Link(neutrality.LinkID(l)).Name, p*100)
		}
	}

	// Network-level signal: does the neutral linear model even fit?
	pathsets := neutrality.PowerSetPathsets(net)
	y := make([]float64, len(pathsets))
	exact := neutrality.ExactY(net, perf)
	for i, ps := range pathsets {
		y[i] = exact(ps)
	}
	loss := neutrality.LossTomography(net, pathsets, y)
	fmt.Printf("least-squares neutral-model residual: %.4f\n", loss.Residual)

	// Network-level detection (Lemma 1 / Definition 1): does ANY
	// non-negative link assignment explain the observations?
	a := neutrality.RoutingMatrix(net, pathsets)
	if neutrality.ConsistentNonneg(a, y, 1e-3) {
		fmt.Println("System 3 over P*: solvable — consistent with a neutral network")
	} else {
		fmt.Println("System 3 over P*: UNSOLVABLE — the network cannot be neutral")
	}

	// Localization (Algorithm 1). Note: in Figure 1 no link sequence is
	// shared by two path pairs, so the violation is detectable (above)
	// but not identifiable — Algorithm 1 correctly declines to blame a
	// specific link. That distinction is the subject of Section 4.
	meas := neutrality.SyntheticMeasurements(states, neutrality.DefaultSyntheticOptions())
	res := neutrality.InferMeasured(net, meas, neutrality.DefaultMeasureOptions())
	switch {
	case res.NetworkNonNeutral():
		fmt.Print("Algorithm 1: VIOLATION localized to ")
		for _, v := range res.NonNeutralSeqs() {
			fmt.Printf("%s ", v.SeqNames())
		}
		fmt.Println()
	case len(res.Candidates) == 0:
		fmt.Printf("Algorithm 1: no identifiable link sequence (%d slices had too few path pairs)\n",
			len(res.TooFewPairs))
	default:
		fmt.Println("Algorithm 1: all identifiable sequences look neutral")
	}
	fmt.Println()
}

func main() {
	// World 1: neutral but congested.
	net1 := neutrality.Figure1()
	perf1 := neutrality.NewPerf(net1.NumLinks(), net1.NumClasses())
	l3, _ := net1.LinkByName("l3")
	perf1.SetNeutral(l3.ID, 0.4)
	world("neutral network, lossy l3", net1, perf1)

	// World 2: the Figure 1 neutrality violation.
	net2 := neutrality.Figure1()
	perf2 := neutrality.Figure1Perf(net2)
	world("Figure 1 violation (l1 throttles p2)", net2, perf2)

	// World 3: the Figure 4 violation, which IS identifiable — Algorithm 1
	// localizes it where tomography misattributes.
	net3 := neutrality.Figure4()
	perf3 := neutrality.NewPerf(net3.NumLinks(), net3.NumClasses())
	l1, _ := net3.LinkByName("l1")
	perf3.Set(l1.ID, neutrality.C1, 0.05)
	perf3.Set(l1.ID, neutrality.C2, 0.7)
	world("Figure 4 violation (l1 throttles class c2)", net3, perf3)
}
