// Dumbbell: a full emulation of the paper's topology A scenario — an ISP
// throttles traffic from two servers (class c2) on a shared 10 Mbps link
// with a token-bucket policer at 30 % of capacity, while two other servers
// (class c1) are untouched. End-hosts exchange real (emulated) TCP CUBIC
// traffic; the inference algorithm sees only per-path per-interval packet
// counts and must decide whether the shared link differentiates.
//
// The example runs the neutral network first, then the policed one, and
// contrasts the verdicts.
//
// Run with: go run ./examples/dumbbell
package main

import (
	"fmt"
	"log"

	"neutrality"
)

func runOnce(name string, diff *neutrality.Differentiation) {
	params := neutrality.DefaultParamsA().Scale(0.1, 120) // 10 Mbps, 2 min
	params.MeanFlowMb = [2]float64{2, 2}                  // 20 Mb flows at paper scale
	params.Diff = diff

	exp, topoA := params.Experiment(name)
	run, err := neutrality.RunExperiment(exp)
	if err != nil {
		log.Fatal(err)
	}

	// What each path experienced (the Figure 8 view).
	probs := neutrality.PathCongestionProb(run.Meas, 0.01)
	fmt.Printf("\n=== %s ===\n", name)
	for i, pr := range probs {
		class := "c1"
		if i >= 2 {
			class = "c2"
		}
		fmt.Printf("  path p%d (%s): congested %5.1f%% of intervals\n", i+1, class, pr*100)
	}

	// What the algorithm concludes from those observations alone.
	res := neutrality.InferMeasured(topoA.Net, run.Meas, neutrality.DefaultMeasureOptions())
	fmt.Print(neutrality.Report(res))
	if res.NetworkNonNeutral() {
		for _, v := range res.NonNeutralSeqs() {
			fmt.Printf("  >> differentiation localized to %s\n", v.SeqNames())
		}
	} else {
		fmt.Println("  >> no differentiation detected")
	}
}

func main() {
	fmt.Println("Topology A: four paths over one shared link (Figure 7).")
	runOnce("neutral shared link", nil)
	runOnce("policing class c2 at 30%", neutrality.PoliceClass2(0.3))
	runOnce("shaping c2 at 30% / c1 at 70%", neutrality.ShapeBothClasses(0.3))
}
