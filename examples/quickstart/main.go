// Quickstart: detect and localize a neutrality violation from synthetic
// external observations, using only the public API.
//
// The scenario is the paper's Figure 5: an access link l1 carries three
// paths; it silently throttles the two paths of class c2 (congesting them
// with probability 0.5 per interval) while class c1 sails through. The
// violation is invisible to single-path measurements — it emerges only
// when p2 and p3 are observed as a pair and found to congest at the same
// time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"neutrality"
)

func main() {
	// 1. The network under test: topology, paths, performance classes.
	net := neutrality.Figure5()
	fmt.Println(net.Describe())

	// 2. Ground truth (known to this demo, not to the algorithm):
	//    l1 congests class-2 traffic with probability 0.5 per interval.
	perf := neutrality.Figure5Perf(net)

	// 3. Theorem 1: is this violation observable at all from the edge?
	witnesses := neutrality.Observable(net, perf)
	if len(witnesses) == 0 {
		log.Fatal("violation not observable — nothing to do")
	}
	for _, w := range witnesses {
		fmt.Printf("observable: virtual link %s (link %s regulating class %d)\n",
			w.Name, net.Link(w.Link).Name, int(w.Class)+1)
	}

	// 4. Simulate end-host measurements: 10,000 intervals of per-path
	//    congestion states, converted to per-interval packet counts.
	sampler := neutrality.NewSampler(net, perf, 42)
	states := sampler.SampleIntervals(10000)
	meas := neutrality.SyntheticMeasurements(states, neutrality.DefaultSyntheticOptions())

	// 5. Run the full inference pipeline (Algorithm 2 normalization +
	//    Algorithm 1 with clustering) on the raw counts.
	result := neutrality.InferMeasured(net, meas, neutrality.DefaultMeasureOptions())
	fmt.Println(neutrality.Report(result))

	// 6. Score against ground truth.
	l1, _ := net.LinkByName("l1")
	metrics := neutrality.Evaluate(result, []neutrality.LinkID{l1.ID})
	fmt.Printf("false negatives: %.0f%%   false positives: %.0f%%   granularity: %.1f\n",
		metrics.FalseNegativeRate*100, metrics.FalsePositiveRate*100, metrics.Granularity)

	if !result.NetworkNonNeutral() {
		log.Fatal("expected a violation verdict")
	}
	fmt.Println("\nverdict: the network is NOT neutral; the culprit sequences are above.")
}
