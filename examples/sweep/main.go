// Sweep: explore a policer-rate × discrimination-fraction plane with
// the sweep orchestration engine, using only the public API.
//
// Instead of hand-rolling nested loops over emulation runs, the
// scenario space is declared as a grid — each axis a knob, the
// Cartesian product the experiment cells. The engine expands the grid
// lazily, fans cells across the worker pool, derives every cell's
// seed from (baseSeed, cellIndex) so any cell is reproducible in
// isolation, and folds each result into bounded-memory online
// aggregates (streaming mean/variance plus quantile sketches per axis
// slice). The summary below is byte-identical for every worker count.
//
// The second half demonstrates the distributed path: the same grid is
// split into shard-aligned partitions (each of which could run on its
// own machine), every partition writes its own directory, and a merge
// reconstitutes the manifest, shard files, and aggregate summary
// byte-identical to a single-process run.
//
// The same grid can be persisted, partitioned, and merged from the
// command line:
//
//	go run ./cmd/neutrality sweep -demo -out /tmp/sweep -shards 4
//	go run ./cmd/neutrality sweep -demo -out /tmp/p1 -partition 1/2
//	go run ./cmd/neutrality sweep -demo -out /tmp/p2 -partition 2/2
//	go run ./cmd/neutrality merge -demo -out /tmp/merged /tmp/p1 /tmp/p2
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"neutrality"
)

func main() {
	// 1. Declare the scenario grid: a policed dumbbell at 5% of the
	//    paper's capacity, 10 emulated seconds per cell; 3 policing
	//    rates × 3 discrimination fractions × 2 replicas = 18 cells.
	g := neutrality.NewGrid("rate-dfrac-demo", neutrality.GridBase{
		ScaleFactor: 0.05,
		DurationSec: 10,
	})
	g.Add("diff", neutrality.GridStr("police"))
	g.Add("rate",
		neutrality.GridNum(0.1).WithLabel("10%"),
		neutrality.GridNum(0.3).WithLabel("30%"),
		neutrality.GridNum(0.5).WithLabel("50%"))
	g.Add("dfrac", neutrality.GridNum(0.25), neutrality.GridNum(0.5), neutrality.GridNum(0.75))
	g.Add("rep", neutrality.GridNum(0), neutrality.GridNum(1))
	if err := neutrality.ValidateSweepGrid(g); err != nil {
		log.Fatal(err)
	}

	// 2. Execute: cells stream through the pool in cell order; the
	//    callback observes each record as it is committed.
	fmt.Printf("running %d cells…\n", g.Cells())
	res, err := neutrality.RunSweep(context.Background(), g, neutrality.SweepOptions{
		BaseSeed: 1,
		OnRecord: func(r neutrality.SweepRecord) {
			if r.Verdict {
				fmt.Printf("  cell %2d %v: NON-NEUTRAL (unsolvability %.3f)\n",
					r.Cell, r.Axes, r.Unsolvability)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The online aggregates: global quality plus marginal curves
	//    along every axis.
	fmt.Println()
	fmt.Print(res.Agg.Summary())

	// 4. The distributed path: split the same grid into 2 partitions —
	//    deterministic, shard-aligned cell ranges every orchestrator
	//    computes identically from the spec — run each into its own
	//    directory (on a fleet, each would be a different machine),
	//    then merge and verify the summary matches the in-memory run
	//    byte for byte.
	base, err := os.MkdirTemp("", "sweep-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	const parts, shards = 2, 2
	dirs := make([]string, parts)
	for k := 1; k <= parts; k++ {
		rng, err := neutrality.PartitionSweepRange(g, shards, k, parts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("partition %d/%d: cells [%d,%d)\n", k, parts, rng.Lo, rng.Hi)
		dirs[k-1] = filepath.Join(base, fmt.Sprintf("part-%d", k))
		if _, err := neutrality.RunSweep(context.Background(), g, neutrality.SweepOptions{
			BaseSeed: 1,
			Shards:   shards,
			Dir:      dirs[k-1],
			Partition: neutrality.SweepPartition{
				K: k, N: parts,
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	merged, err := neutrality.MergeSweep(g, dirs, filepath.Join(base, "merged"))
	if err != nil {
		log.Fatal(err)
	}
	if merged.Agg.Summary() == res.Agg.Summary() {
		fmt.Println("merged summary is byte-identical to the single-process run")
	} else {
		log.Fatal("merged summary diverged from the single-process run")
	}
}
