// Backbone: localizing differentiation inside a multi-ISP core (the
// paper's topology B scenario, Section 6.4). A tier-1 ISP polices
// long-flow traffic on three links — l14 and l20 at its ingresses from two
// tier-2 networks, l5 inside its own backbone. Sixteen measured paths
// (short-flow "dark" hosts in class c1, long-flow "light" hosts in class
// c2) cross the core alongside unmeasured background traffic.
//
// This example uses the fast synthetic substrate (per-interval link-state
// sampling through the equivalent neutral network) so it runs in a couple
// of seconds; the emulated version of the same experiment is regenerated
// by the Fig. 10 benchmarks and cmd/experiments.
//
// Run with: go run ./examples/backbone
package main

import (
	"fmt"
	"sort"

	"neutrality"
)

func main() {
	topoB := neutrality.NewTopologyB()
	net := topoB.InferenceNet
	fmt.Printf("Topology B: %d links, %d measured paths, policers l5/l14/l20.\n\n", net.NumLinks(), net.NumPaths())

	// Ground truth: a little congestion everywhere, plus the three
	// policers hitting class c2 hard.
	perf := neutrality.NewPerf(net.NumLinks(), net.NumClasses())
	for l := 0; l < net.NumLinks(); l++ {
		perf.SetNeutral(neutrality.LinkID(l), 0.01)
	}
	for _, l := range topoB.Policers {
		perf.Set(l, neutrality.C1, 0.02)
		perf.Set(l, neutrality.C2, 0.45)
	}

	// End-host measurements: 6000 intervals (10 minutes at 100 ms).
	states := neutrality.NewSampler(net, perf, 2024).SampleIntervals(6000)
	meas := neutrality.SyntheticMeasurements(states, neutrality.DefaultSyntheticOptions())
	res := neutrality.InferMeasured(net, meas, neutrality.DefaultMeasureOptions())

	// Per-sequence view, most suspicious first (the Figure 10(b) view).
	sorted := append([]*neutrality.Verdict(nil), res.Candidates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Unsolvability > sorted[j].Unsolvability })
	fmt.Println("link sequence                 unsolvability  verdict")
	for _, v := range sorted {
		verdict := "neutral"
		if v.NonNeutral && !v.Redundant {
			verdict = "NON-NEUTRAL"
		} else if v.Redundant {
			verdict = "redundant"
		}
		fmt.Printf("  %-28s %9.4f     %s\n", v.SeqNames(), v.Unsolvability, verdict)
	}

	m := neutrality.Evaluate(res, topoB.Policers)
	fmt.Printf("\nfalse-negative rate %.0f%%, false-positive rate %.0f%%, granularity %.2f, policers covered %d/3\n",
		m.FalseNegativeRate*100, m.FalsePositiveRate*100, m.Granularity, m.Detected)

	// Which links are actually implicated?
	implicated := neutrality.NewLinkSet()
	for _, v := range res.NonNeutralSeqs() {
		for _, l := range v.Slice.Seq {
			implicated.Add(l)
		}
	}
	fmt.Print("implicated links: ")
	for _, l := range implicated.Sorted() {
		fmt.Printf("%s ", net.Link(l).Name)
	}
	fmt.Println()
}
