package neutrality

import (
	"context"
	"io"

	"neutrality/internal/grid"
	"neutrality/internal/lab"
	"neutrality/internal/sweep"
)

// Sweep orchestration, re-exported from internal/grid and
// internal/sweep: declare a scenario grid (axes over topologies,
// workload mixes, differentiation policies, and inference knobs),
// then execute it as a sharded stream of independent cells with
// online aggregation and resumable checkpoints. See the
// `neutrality sweep` subcommand for the file-based workflow.
type (
	// Grid is a declarative scenario grid: axes whose Cartesian
	// product defines the experiment cells, expanded lazily.
	Grid = grid.Grid
	// GridAxis is one grid dimension.
	GridAxis = grid.Axis
	// GridValue is one axis setting (number or string, plus label).
	GridValue = grid.Value
	// GridBase is the per-grid execution scale and seed mode.
	GridBase = grid.Base
	// GridRange is a half-open contiguous cell interval of a grid —
	// the unit a distributed sweep is partitioned into.
	GridRange = grid.Range
	// SweepOptions configure a sweep run (workers, shards, seed,
	// output directory, resume, partition).
	SweepOptions = sweep.Options
	// SweepPartition selects partition K of N of a distributed sweep:
	// a deterministic shard-aligned cell range of the grid.
	SweepPartition = sweep.Partition
	// SweepRecord is one cell's outcome (one JSONL line).
	SweepRecord = sweep.Record
	// SweepResult is a run's outcome: online aggregates plus resume
	// accounting.
	SweepResult = sweep.Result
	// SweepAgg is the mergeable online aggregate of a sweep.
	SweepAgg = sweep.Agg
)

// NewGrid starts a grid with the given name and base.
func NewGrid(name string, base GridBase) *Grid { return grid.New(name, base) }

// GridNum returns a numeric axis value.
func GridNum(v float64) GridValue { return grid.Num(v) }

// GridStr returns a string axis value.
func GridStr(s string) GridValue { return grid.Str(s) }

// ParseGridJSON reads and validates a grid spec in its JSON file form.
func ParseGridJSON(r io.Reader) (*Grid, error) { return grid.ParseJSON(r) }

// ValidateSweepGrid checks a grid against the sweep axis vocabulary
// before anything runs.
func ValidateSweepGrid(g *Grid) error { return sweep.Validate(g) }

// RunSweep executes the grid on the sweep engine. Output (records,
// shard files, aggregates) is byte-identical for every worker count;
// cancelling ctx aborts in-flight emulations and leaves a resumable
// checkpoint when SweepOptions.Dir is set.
func RunSweep(ctx context.Context, g *Grid, opt SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, g, opt)
}

// MergeSweep reconstitutes a single-run sweep directory from the
// partition directories of a distributed sweep (SweepOptions.Partition
// runs of the same grid). It verifies fingerprints, completeness, and
// range disjointness — reporting gaps and unfinished partitions as
// resumable frontiers — then produces a manifest, shard files, and
// aggregate summary byte-identical to a single-process run.
func MergeSweep(g *Grid, dirs []string, out string) (*SweepResult, error) {
	return sweep.Merge(g, dirs, out)
}

// Artifact integrity, re-exported from internal/sweep: every shard
// record carries a CRC32C frame and every shard file a SHA-256 content
// hash in the manifest, so damage is detectable — and because each
// record is a pure function of (grid, cell, seed), damage is also
// repairable byte-identically. See the `neutrality verify` subcommand
// for the file-based workflow.
type (
	// SweepVerifyReport is the outcome of a read-only integrity scrub.
	SweepVerifyReport = sweep.VerifyReport
	// SweepShardStatus is one shard's verification outcome.
	SweepShardStatus = sweep.ShardStatus
	// SweepRepairOptions configure RepairSweep.
	SweepRepairOptions = sweep.RepairOptions
	// SweepRepairReport is the outcome of a RepairSweep.
	SweepRepairReport = sweep.RepairReport
	// SweepManifestInfo is a sweep directory's validated identity.
	SweepManifestInfo = sweep.ManifestInfo
)

// VerifySweep walks a sweep directory's artifacts — manifest,
// per-shard content hashes, per-record CRC framing — and reports every
// integrity violation without mutating anything.
func VerifySweep(g *Grid, dir string) (*SweepVerifyReport, error) {
	return sweep.Verify(g, dir)
}

// RepairSweep converges a damaged sweep directory on a state
// indistinguishable from an uncorrupted run: quarantined records are
// re-derived from their seeds and spliced back, torn tails truncated,
// and the manifest rewritten with fresh content hashes.
func RepairSweep(ctx context.Context, g *Grid, dir string, opt SweepRepairOptions) (*SweepRepairReport, error) {
	return sweep.Repair(ctx, g, dir, opt)
}

// PartitionSweepRange computes the cell range partition k of n covers
// for a grid run with the given shard count — the same split RunSweep
// applies, exposed so orchestrators can size partitions up front.
func PartitionSweepRange(g *Grid, shards, k, n int) (GridRange, error) {
	if shards <= 0 {
		shards = 1
	}
	return grid.PartitionBlocks(g.Cells(), shards, k, n)
}

// DemoSweepGrid is the built-in 1,000-cell demonstration grid:
// policer rate × discrimination fraction × topology × replicas.
func DemoSweepGrid() *Grid { return sweep.DemoGrid() }

// TableTwoGrid is Table 2's experiment set (1–9) as a declarative
// grid spec — the paper's evaluation expressed in the sweep
// vocabulary.
func TableTwoGrid(set int) (*Grid, error) { return lab.TableTwoGrid(set) }
