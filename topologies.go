package neutrality

import "neutrality/internal/topo"

// The paper's topologies, ready to use.

// Performance classes: C1 is the paper's top-priority c1, C2 the regulated
// c2.
const (
	C1 = topo.C1
	C2 = topo.C2
)

// Figure1 builds the running example of Section 2: four links, three
// paths, two classes; l1 treats p2 worse than p1 in the narrative.
func Figure1() *Network { return topo.Figure1() }

// Figure1Perf returns Figure 1's ground-truth performance table.
func Figure1Perf(n *Network) Perf { return topo.Figure1Perf(n) }

// Figure2 builds the non-observable violation example of Section 3.
func Figure2() *Network { return topo.Figure2() }

// Figure4 builds the identifiability example of Sections 3–5 (l1
// identifiable, l2 not).
func Figure4() *Network { return topo.Figure4() }

// Figure5 builds the pathset-observability example (detection requires
// observing {p2,p3} jointly).
func Figure5() *Network { return topo.Figure5() }

// Figure5Perf returns Figure 5's ground truth: l1 congests class 2 with
// probability 0.5, everything else is loss-free.
func Figure5Perf(n *Network) Perf { return topo.Figure5Perf(n) }

// NewTopologyA builds the dumbbell evaluation topology (Figure 7).
func NewTopologyA() *TopologyA { return topo.NewTopologyA() }

// NewTopologyB builds the multi-ISP backbone evaluation topology (in the
// spirit of Figure 9, with the same three policers l5, l14, l20).
func NewTopologyB() *TopologyB { return topo.NewTopologyB() }
