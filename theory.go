package neutrality

import (
	"neutrality/internal/graph"
	"neutrality/internal/matrix"
	"neutrality/internal/neutral"
	"neutrality/internal/nslice"
	"neutrality/internal/routing"
)

// Theory API: the constructs of Sections 3–4 of the paper.

type (
	// Equivalent is the neutral equivalent network G⁺ (Section 3.2).
	Equivalent = neutral.Equivalent
	// VirtualLink is a link of G⁺.
	VirtualLink = neutral.VirtualLink
	// Witness is a virtual link satisfying Theorem 1's observability
	// condition.
	Witness = neutral.Witness
	// Slice is the network slice of a link sequence τ (Section 4.1).
	Slice = nslice.Slice
	// PathPair is an unordered pair of paths.
	PathPair = nslice.PathPair
	// PairEstimate is one path pair's estimate of x_τ.
	PairEstimate = nslice.PairEstimate
	// Lemma3Witness certifies identifiability per Lemma 3.
	Lemma3Witness = nslice.Lemma3Witness
	// Matrix is a dense matrix (routing matrices, systems of equations).
	Matrix = matrix.Matrix
)

// BuildEquivalent constructs the neutral equivalent of network n under the
// ground-truth performance table (Section 3.2).
func BuildEquivalent(n *Network, perf Perf) *Equivalent { return neutral.Build(n, perf) }

// Observable applies Theorem 1: it returns the witnesses — virtual links
// of G⁺ distinguishable from every link of G — that make the violation
// observable. Empty means the violation (if any) cannot be detected from
// external observations.
func Observable(n *Network, perf Perf) []Witness { return neutral.Observable(n, perf) }

// ObservableStructural asks whether differentiation at the given links
// could ever be observed, assuming every class gap is non-zero. It depends
// only on topology, paths, and class structure.
func ObservableStructural(n *Network, nonNeutral []LinkID) []Witness {
	return neutral.ObservableStructural(n, nonNeutral)
}

// Slices enumerates every link sequence that is the exact shared-link set
// of at least one path pair (Algorithm 1, lines 2–8).
func Slices(n *Network) []*Slice { return nslice.Enumerate(n) }

// SliceFor builds the slice of an explicit link sequence. The result has
// no path pairs when τ is non-identifiable (like l2 in the paper's
// Figure 4).
func SliceFor(n *Network, seq []LinkID) *Slice { return nslice.For(n, seq) }

// RoutingMatrix builds the generalized routing matrix A(Θ) over the given
// pathsets (Section 2.3).
func RoutingMatrix(n *Network, pathsets []Pathset) *Matrix {
	return routing.Matrix(n, pathsets)
}

// Consistent reports whether A·x = y admits a solution over the reals
// (Rouché–Capelli rank test). tol <= 0 uses a sensible default.
func Consistent(a *Matrix, y []float64, tol float64) bool {
	return matrix.Consistent(a, y, tol)
}

// ConsistentNonneg reports whether A·x = y admits a solution with x >= 0 —
// the paper's operative notion of "the system has a solution", since
// performance numbers −log P are non-negative.
func ConsistentNonneg(a *Matrix, y []float64, tol float64) bool {
	return matrix.ConsistentNonneg(a, y, tol)
}

// Unsolvability is the practical score of Section 6.2: the spread of the
// per-path-pair estimates of x_τ.
func Unsolvability(estimates []PairEstimate) float64 { return nslice.Unsolvability(estimates) }

// PowerSetPathsets enumerates P* for small networks (theory experiments).
func PowerSetPathsets(n *Network) []Pathset { return n.PowerSetPathsets() }

var _ = graph.NewPathset // keep the import pinned to the model package
