package neutrality

import "neutrality/internal/tomo"

// Baseline algorithms the paper positions itself against (Section 8).

type (
	// BoolTomographyResult is the outcome of Boolean network tomography.
	BoolTomographyResult = tomo.BoolResult
	// LossTomographyResult is the outcome of least-squares loss
	// tomography.
	LossTomographyResult = tomo.LossResult
	// LinkPathProbs carries directly measured per-link per-path
	// congestion probabilities (in-network visibility).
	LinkPathProbs = tomo.LinkPathProbs
	// FlaggedLink is a link flagged by direct probing.
	FlaggedLink = tomo.Flagged
)

// BooleanTomography locates congested links per interval under the
// neutral assumption (Nguyen–Thiran style). On a non-neutral network it
// misattributes or fails to explain congestion — the paper's motivation.
func BooleanTomography(n *Network, states [][]bool) *BoolTomographyResult {
	return tomo.Boolean(n, states)
}

// LossTomography fits the neutral linear model y = A·x by least squares;
// the residual is a network-level inconsistency signal.
func LossTomography(n *Network, pathsets []Pathset, y []float64) *LossTomographyResult {
	return tomo.LeastSquares(n, pathsets, y)
}

// DirectProbe flags links whose directly measured per-class congestion
// probabilities diverge (NetPolice-style; requires in-network probes).
func DirectProbe(n *Network, probs []LinkPathProbs, gapThreshold float64) []FlaggedLink {
	return tomo.DirectProbe(n, probs, gapThreshold)
}
