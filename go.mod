module neutrality

go 1.24.0
