package neutrality

import (
	"io"

	"neutrality/internal/core"
	"neutrality/internal/measure"
	"neutrality/internal/synth"
)

// Inference API: Algorithm 1 (Section 5) with Algorithm 2 measurement
// processing (Section 6.2).

type (
	// Config parameterizes Infer.
	Config = core.Config
	// Result is the inference outcome: per-slice verdicts, the flagged
	// set Σn̄, and diagnostics.
	Result = core.Result
	// Verdict is one slice's outcome.
	Verdict = core.Verdict
	// Metrics are the paper's quality measures: false-negative rate,
	// false-positive rate, granularity.
	Metrics = core.Metrics
	// Observer supplies pathset performance numbers to the inference.
	Observer = core.Observer
	// YFunc adapts a slice-independent observation lookup to Observer.
	YFunc = core.YFunc
	// MeasurementObserver runs Algorithm 2 over raw packet counts.
	MeasurementObserver = core.MeasurementObserver
	// Measurements are raw per-interval per-path sent/lost packet counts.
	Measurements = measure.Measurements
	// MeasureOptions configures Algorithm 2 (loss threshold,
	// normalization, smoothing).
	MeasureOptions = measure.Options
	// PathsetPerf is a processed pathset performance number.
	PathsetPerf = measure.PathsetPerf
)

// Decision modes.
const (
	// Clustered is the paper's practical rule: per-pair estimate spread
	// clustered into two groups (Section 6.2).
	Clustered = core.Clustered
	// Exact decides solvability by an exact rank/NNLS test; appropriate
	// for noise-free observations.
	Exact = core.Exact
)

// DefaultConfig returns the paper's operating point (clustered mode).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultMeasureOptions mirrors the paper: 1 % loss threshold,
// normalization on.
func DefaultMeasureOptions() MeasureOptions { return measure.DefaultOptions() }

// Infer runs Algorithm 1 on network n with the given observer and config.
func Infer(n *Network, obs Observer, cfg Config) *Result { return core.Infer(n, obs, cfg) }

// InferExact runs Algorithm 1 with exact (noise-free) observations.
func InferExact(n *Network, y func(Pathset) float64) *Result {
	return core.Infer(n, core.YFunc(y), Config{Mode: core.Exact})
}

// InferMeasured runs the full practical pipeline on raw measurements:
// Algorithm 2 normalization per slice, then Algorithm 1 with clustering.
func InferMeasured(n *Network, meas *Measurements, opts MeasureOptions) *Result {
	return core.Infer(n, core.MeasurementObserver{Meas: meas, Opts: opts}, core.DefaultConfig())
}

// ReadMeasurementsCSV parses raw measurements from the CSV format written
// by WriteMeasurementsCSV (header `interval,path0_sent,path0_lost,...`).
func ReadMeasurementsCSV(r io.Reader) (*Measurements, error) { return measure.ReadCSV(r) }

// WriteMeasurementsCSV serializes raw measurements for interchange with
// external measurement platforms.
func WriteMeasurementsCSV(w io.Writer, m *Measurements) error { return m.WriteCSV(w) }

// PathCongestionProb returns, for each path, the fraction of its active
// intervals with loss at or above the threshold — the per-path series
// Figure 8 plots.
func PathCongestionProb(meas *Measurements, lossThreshold float64) []float64 {
	return measure.PathCongestionProb(meas, lossThreshold)
}

// Evaluate scores a result against ground truth (Section 5's metrics).
func Evaluate(res *Result, nonNeutralLinks []LinkID) Metrics {
	return core.Evaluate(res, nonNeutralLinks)
}

// Report renders a human-readable inference summary.
func Report(res *Result) string { return core.Report(res) }

// ExactY returns the exact observation lookup of a network under known
// ground truth, computed through the equivalent neutral network. This is
// what end-hosts would measure with infinitely many intervals.
func ExactY(n *Network, perf Perf) func(Pathset) float64 { return synth.YFunc(n, perf) }

// NewSampler draws per-interval congestion states from ground truth,
// for synthetic (emulator-free) experiments.
func NewSampler(n *Network, perf Perf, seed int64) *synth.Sampler {
	return synth.NewSampler(n, perf, seed)
}

// SyntheticMeasurements converts sampled interval states into raw packet
// counts consumable by InferMeasured.
func SyntheticMeasurements(states [][]bool, opts synth.MeasurementOptions) *Measurements {
	return synth.ToMeasurements(states, opts)
}

// DefaultSyntheticOptions returns sensible packet-count conversion
// parameters.
func DefaultSyntheticOptions() synth.MeasurementOptions {
	return synth.DefaultMeasurementOptions()
}
