// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout mapping each benchmark name to its reported
// metrics, for tracking the performance trajectory across PRs:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark maps to an object keyed by sanitized metric unit
// ("ns/op" → "ns_op", "allocs/op" → "allocs_op", plus any custom
// b.ReportMetric units such as "agreement_pct"). The GOMAXPROCS suffix
// of the benchmark name (e.g. "-8") is stripped so results from
// machines with different core counts line up.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	benches := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		benches[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkFig10-8   1   123456 ns/op   789 B/op   12 allocs/op   0 fn_pct
//
// The second field is the iteration count; the rest are value/unit
// pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.NewReplacer("/", "_", "%", "pct").Replace(fields[i+1])
		metrics[unit] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}
