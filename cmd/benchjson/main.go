// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout mapping each benchmark name to its reported
// metrics, for tracking the performance trajectory across PRs:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark maps to an object keyed by sanitized metric unit
// ("ns/op" → "ns_op", "allocs/op" → "allocs_op", plus any custom
// b.ReportMetric units such as "agreement_pct" or "events_per_sec"). The
// GOMAXPROCS suffix of the benchmark name (e.g. "-8") is stripped so
// results from machines with different core counts line up.
//
// With -baseline FILE, the parsed results are additionally compared
// against a recorded BENCH json: for every benchmark present in both,
// the run fails (exit 1, after still emitting the JSON) if allocs_op
// regresses more than the allowed slack above the recorded value. CI
// uses this to pin the allocation budget of the emulation benches.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// allocSlack is the tolerated fractional growth of allocs_op over the
// baseline before the check fails. Allocation counts are nearly
// deterministic; the slack absorbs goroutine-scheduling variance in the
// parallel sweep paths.
const allocSlack = 0.10

func main() {
	baseline := flag.String("baseline", "", "recorded BENCH json; fail if allocs_op regresses above it")
	flag.Parse()

	benches := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		benches[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base map[string]map[string]float64
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		if regressions := checkAllocRegression(benches, base); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: %s\n", r)
			}
			os.Exit(1)
		}
	}
}

// checkAllocRegression compares allocs_op for every baseline benchmark
// against the current results, reporting entries that exceed the baseline
// by more than allocSlack. A baseline benchmark that is absent from the
// current run (renamed, or its bench crashed upstream) is itself a
// failure — otherwise the gate would silently stop enforcing anything.
func checkAllocRegression(cur, base map[string]map[string]float64) []string {
	var out []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]["allocs_op"]
		if !ok {
			continue
		}
		c, ok := cur[name]["allocs_op"]
		if !ok {
			out = append(out, fmt.Sprintf("%s: baseline has allocs_op %.0f but the benchmark is missing from the current run", name, b))
			continue
		}
		if limit := b * (1 + allocSlack); c > limit {
			out = append(out, fmt.Sprintf("%s: allocs_op %.0f exceeds baseline %.0f (+%d%% slack)",
				name, c, b, int(allocSlack*100)))
		}
	}
	return out
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkFig10-8   1   123456 ns/op   789 B/op   12 allocs/op   0 fn_pct
//
// The second field is the iteration count; the rest are value/unit
// pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.NewReplacer("/", "_", "%", "pct").Replace(fields[i+1])
		metrics[unit] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}
