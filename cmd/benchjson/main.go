// Command benchjson converts `go test -bench` output on stdin into a
// JSON object on stdout mapping each benchmark name to its reported
// metrics, for tracking the performance trajectory across PRs:
//
//	go test -run='^$' -bench=. -benchtime=1x -benchmem ./... | benchjson > BENCH.json
//
// Each benchmark maps to an object keyed by sanitized metric unit
// ("ns/op" → "ns_op", "allocs/op" → "allocs_op", plus any custom
// b.ReportMetric units such as "agreement_pct" or "events_per_sec"). The
// GOMAXPROCS suffix of the benchmark name (e.g. "-8") is stripped so
// results from machines with different core counts line up.
//
// With -baseline FILE, the parsed results are additionally compared
// against a recorded BENCH json: for every benchmark present in both,
// the run fails (exit 1, after still emitting the JSON) if allocs_op or
// B_op regresses more than the allowed slack above the recorded value,
// or a throughput metric (events_per_sec, sweep_cells_per_sec,
// verify_mb_per_sec, …) drops more than the allowed slack below it.
// CI uses this to pin the allocation budget, the event-engine
// throughput of the emulation benches, the sweep engine's cell
// throughput, and the artifact-integrity scrub's scan rate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// regressionSlack is the tolerated fractional drift of a gated metric
// from its baseline before the check fails. Allocation counts are nearly
// deterministic and the slack absorbs goroutine-scheduling variance in
// the parallel sweep paths; for the throughput gate it also absorbs
// machine-speed jitter on shared CI runners.
const regressionSlack = 0.10

// gatedMetric describes one baseline-compared metric.
type gatedMetric struct {
	unit string
	// higherIsWorse: the gate fails when current > base*(1+slack);
	// otherwise it fails when current < base*(1-slack).
	higherIsWorse bool
}

// gatedMetrics are the metrics compared against the baseline, in report
// order: allocation count, bytes allocated, event-engine throughput,
// sweep-engine cell throughput, distributed-merge throughput,
// end-to-end fleet throughput, integrity-scrub throughput, and
// streaming-ingest record throughput.
var gatedMetrics = []gatedMetric{
	{unit: "allocs_op", higherIsWorse: true},
	{unit: "B_op", higherIsWorse: true},
	{unit: "events_per_sec", higherIsWorse: false},
	{unit: "sweep_cells_per_sec", higherIsWorse: false},
	{unit: "sweep_merge_cells_per_sec", higherIsWorse: false},
	{unit: "fleet_cells_per_sec", higherIsWorse: false},
	{unit: "verify_mb_per_sec", higherIsWorse: false},
	{unit: "ingest_records_per_sec", higherIsWorse: false},
}

func main() {
	baseline := flag.String("baseline", "", "recorded BENCH json; fail if allocs_op regresses above it")
	flag.Parse()

	benches := map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, metrics, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		benches[name] = metrics
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benches); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		var base map[string]map[string]float64
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		if regressions := checkRegressions(benches, base); len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "benchjson: %s\n", r)
			}
			os.Exit(1)
		}
	}
}

// checkRegressions compares every gated metric of every baseline
// benchmark against the current results, reporting entries that drift
// past the slack in the failing direction. A baseline metric that is
// absent from the current run (renamed, or its bench crashed upstream)
// is itself a failure — otherwise the gate would silently stop
// enforcing anything.
func checkRegressions(cur, base map[string]map[string]float64) []string {
	var out []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, gm := range gatedMetrics {
			b, ok := base[name][gm.unit]
			if !ok {
				continue
			}
			c, ok := cur[name][gm.unit]
			if !ok {
				out = append(out, fmt.Sprintf("%s: baseline has %s %.0f but the metric is missing from the current run", name, gm.unit, b))
				continue
			}
			if gm.higherIsWorse {
				if limit := b * (1 + regressionSlack); c > limit {
					out = append(out, fmt.Sprintf("%s: %s %.0f exceeds baseline %.0f (+%d%% slack)",
						name, gm.unit, c, b, int(regressionSlack*100)))
				}
			} else if limit := b * (1 - regressionSlack); c < limit {
				out = append(out, fmt.Sprintf("%s: %s %.0f drops below baseline %.0f (-%d%% slack)",
					name, gm.unit, c, b, int(regressionSlack*100)))
			}
		}
	}
	return out
}

// parseBenchLine parses one `go test -bench` result line:
//
//	BenchmarkFig10-8   1   123456 ns/op   789 B/op   12 allocs/op   0 fn_pct
//
// The second field is the iteration count; the rest are value/unit
// pairs.
func parseBenchLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	metrics := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		unit := strings.NewReplacer("/", "_", "%", "pct").Replace(fields[i+1])
		metrics[unit] = v
	}
	if len(metrics) == 0 {
		return "", nil, false
	}
	return name, metrics, true
}
