package main

import (
	"strings"
	"testing"
)

func TestCheckRegressions(t *testing.T) {
	base := map[string]map[string]float64{
		"Fig8Set4":       {"allocs_op": 1000000, "B_op": 6e6, "events_per_sec": 9e6, "ns_op": 5e8},
		"Table1Defaults": {"allocs_op": 50},
		"NsOnly":         {"ns_op": 100},
	}
	ok := map[string]map[string]float64{
		"Fig8Set4": { // every gate within slack
			"allocs_op":      1000000 * 1.05,
			"B_op":           6e6 * 1.09,
			"events_per_sec": 9e6 * 0.92,
		},
		"Table1Defaults": {"allocs_op": 40},                        // improved
		"NsOnly":         {"ns_op": 500},                           // no gated metric in baseline: ignored
		"NewBench":       {"allocs_op": 1e12, "events_per_sec": 1}, // not in baseline: ignored
	}
	if got := checkRegressions(ok, base); len(got) != 0 {
		t.Fatalf("false regression: %v", got)
	}

	bad := map[string]map[string]float64{
		"Fig8Set4":       {"allocs_op": 1000000 * 1.5, "B_op": 6e6, "events_per_sec": 9e6},
		"Table1Defaults": {"allocs_op": 50},
	}
	if got := checkRegressions(bad, base); len(got) != 1 || !strings.Contains(got[0], "allocs_op") {
		t.Fatalf("alloc regression not flagged exactly once: %v", got)
	}
}

func TestCheckRegressionsBytesGate(t *testing.T) {
	base := map[string]map[string]float64{"Fig8Set4": {"B_op": 6e6}}
	bad := map[string]map[string]float64{"Fig8Set4": {"B_op": 6e6 * 1.2}}
	if got := checkRegressions(bad, base); len(got) != 1 || !strings.Contains(got[0], "B_op") {
		t.Fatalf("B_op regression not flagged: %v", got)
	}
	ok := map[string]map[string]float64{"Fig8Set4": {"B_op": 6e6 * 0.2}}
	if got := checkRegressions(ok, base); len(got) != 0 {
		t.Fatalf("improved B_op flagged: %v", got)
	}
}

func TestCheckRegressionsThroughputGate(t *testing.T) {
	base := map[string]map[string]float64{"Fig8Set4": {"events_per_sec": 9e6}}
	// Throughput gates in the opposite direction: lower is worse.
	bad := map[string]map[string]float64{"Fig8Set4": {"events_per_sec": 9e6 * 0.8}}
	if got := checkRegressions(bad, base); len(got) != 1 || !strings.Contains(got[0], "events_per_sec") {
		t.Fatalf("throughput regression not flagged: %v", got)
	}
	ok := map[string]map[string]float64{"Fig8Set4": {"events_per_sec": 9e6 * 2}}
	if got := checkRegressions(ok, base); len(got) != 0 {
		t.Fatalf("improved throughput flagged: %v", got)
	}
	// A faster-but-within-slack run passes.
	edge := map[string]map[string]float64{"Fig8Set4": {"events_per_sec": 9e6 * 0.91}}
	if got := checkRegressions(edge, base); len(got) != 0 {
		t.Fatalf("within-slack throughput flagged: %v", got)
	}
}

func TestCheckRegressionsMissing(t *testing.T) {
	base := map[string]map[string]float64{
		"Fig8Set4": {"allocs_op": 1000000, "events_per_sec": 9e6},
	}
	// A gated benchmark vanishing from the current run must fail, or the
	// gate fails open when a bench is renamed or crashes upstream.
	got := checkRegressions(map[string]map[string]float64{"Other": {"allocs_op": 1}}, base)
	if len(got) != 2 || !strings.Contains(got[0], "Fig8Set4") {
		t.Fatalf("missing gated bench not flagged per metric: %v", got)
	}
	// A single gated metric vanishing (benchmark still present) fails too.
	got = checkRegressions(map[string]map[string]float64{"Fig8Set4": {"allocs_op": 1000000}}, base)
	if len(got) != 1 || !strings.Contains(got[0], "events_per_sec") {
		t.Fatalf("missing gated metric not flagged: %v", got)
	}
}

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkFig8Set1-8  \t 1\t2491082917 ns/op\t  100.0 agreement_pct\t829746968 B/op\t 8440269 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "Fig8Set1" {
		t.Fatalf("name = %q", name)
	}
	want := map[string]float64{
		"ns_op":         2491082917,
		"agreement_pct": 100,
		"B_op":          829746968,
		"allocs_op":     8440269,
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
}

func TestParseBenchLineKeepsUnsuffixedName(t *testing.T) {
	name, _, ok := parseBenchLine("BenchmarkTable1Defaults 1 92833 ns/op")
	if !ok || name != "Table1Defaults" {
		t.Fatalf("name = %q ok=%v", name, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tneutrality\t91.676s",
		"Fig 8(a) neutral, c2 mean flow size sweep",
		"BenchmarkBroken-8 notanint 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}

func TestCheckRegressionsSweepThroughputGate(t *testing.T) {
	base := map[string]map[string]float64{"SweepGrid": {"sweep_cells_per_sec": 250}}

	bad := map[string]map[string]float64{"SweepGrid": {"sweep_cells_per_sec": 250 * 0.8}}
	if got := checkRegressions(bad, base); len(got) != 1 || !strings.Contains(got[0], "sweep_cells_per_sec") {
		t.Fatalf("sweep throughput drop not caught: %v", got)
	}

	ok := map[string]map[string]float64{"SweepGrid": {"sweep_cells_per_sec": 250 * 1.5}}
	if got := checkRegressions(ok, base); len(got) != 0 {
		t.Fatalf("faster sweep flagged: %v", got)
	}

	within := map[string]map[string]float64{"SweepGrid": {"sweep_cells_per_sec": 250 * 0.91}}
	if got := checkRegressions(within, base); len(got) != 0 {
		t.Fatalf("within-slack drift flagged: %v", got)
	}

	missing := map[string]map[string]float64{"SweepGrid": {"ns_op": 1}}
	if got := checkRegressions(missing, base); len(got) != 1 || !strings.Contains(got[0], "missing") {
		t.Fatalf("missing sweep metric not caught: %v", got)
	}
}

func TestCheckRegressionsMergeThroughputGate(t *testing.T) {
	base := map[string]map[string]float64{"SweepMerge": {"sweep_merge_cells_per_sec": 10000}}

	bad := map[string]map[string]float64{"SweepMerge": {"sweep_merge_cells_per_sec": 10000 * 0.8}}
	if got := checkRegressions(bad, base); len(got) != 1 || !strings.Contains(got[0], "sweep_merge_cells_per_sec") {
		t.Fatalf("merge throughput drop not caught: %v", got)
	}

	ok := map[string]map[string]float64{"SweepMerge": {"sweep_merge_cells_per_sec": 10000 * 2}}
	if got := checkRegressions(ok, base); len(got) != 0 {
		t.Fatalf("faster merge flagged: %v", got)
	}

	missing := map[string]map[string]float64{"SweepMerge": {"ns_op": 1}}
	if got := checkRegressions(missing, base); len(got) != 1 || !strings.Contains(got[0], "missing") {
		t.Fatalf("missing merge metric not caught: %v", got)
	}
}
