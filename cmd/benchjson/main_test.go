package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, m, ok := parseBenchLine("BenchmarkFig8Set1-8  \t 1\t2491082917 ns/op\t  100.0 agreement_pct\t829746968 B/op\t 8440269 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if name != "Fig8Set1" {
		t.Fatalf("name = %q", name)
	}
	want := map[string]float64{
		"ns_op":         2491082917,
		"agreement_pct": 100,
		"B_op":          829746968,
		"allocs_op":     8440269,
	}
	for k, v := range want {
		if m[k] != v {
			t.Fatalf("%s = %v, want %v (all: %v)", k, m[k], v, m)
		}
	}
}

func TestParseBenchLineKeepsUnsuffixedName(t *testing.T) {
	name, _, ok := parseBenchLine("BenchmarkTable1Defaults 1 92833 ns/op")
	if !ok || name != "Table1Defaults" {
		t.Fatalf("name = %q ok=%v", name, ok)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tneutrality\t91.676s",
		"Fig 8(a) neutral, c2 mean flow size sweep",
		"BenchmarkBroken-8 notanint 5 ns/op",
	} {
		if _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
