package main

import (
	"errors"
	"log"
	"os"

	"neutrality"
)

// Exit codes. Orchestration scripts around the sweep/merge/fleet
// subcommands branch on these instead of parsing stderr:
//
//	0  success
//	1  fatal error (environment, I/O, cancellation without a checkpoint)
//	2  usage error (bad flags; emitted by flag.ExitOnError)
//	3  validation failure — the inputs or artifacts disagree with the
//	   spec (fingerprint mismatch, corrupt manifest, overlapping
//	   partitions); rerunning the same invocation cannot succeed
//	4  resumable incomplete — the on-disk state is valid but unfinished
//	   (interrupted sweep with a checkpoint, timed-out cell, coverage
//	   gap); rerun with -resume (or re-merge once partitions finish)
const (
	exitFatal      = 1
	exitUsage      = 2
	exitValidation = 3
	exitIncomplete = 4
)

// classify maps an error to its exit code via the sweep error kinds.
func classify(err error) int {
	switch {
	case errors.Is(err, neutrality.ErrSweepValidation),
		errors.Is(err, neutrality.ErrMeasureValidation):
		return exitValidation
	case errors.Is(err, neutrality.ErrSweepIncomplete):
		return exitIncomplete
	}
	return exitFatal
}

// fatal logs the error and exits with its classified code.
func fatal(err error) {
	log.Print(err)
	os.Exit(classify(err))
}

// fatalResumable logs the error and exits resumable-incomplete — for
// conditions the kind tags cannot see, like an interrupt that left a
// valid checkpoint behind.
func fatalResumable(err error) {
	log.Print(err)
	os.Exit(exitIncomplete)
}
