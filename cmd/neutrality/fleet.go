package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"neutrality"
)

// cmdFleet dispatches the fleet-mode subcommands: a fault-tolerant
// orchestrator over the distributed sweep path.
//
//	neutrality fleet serve -demo -out merged -addr :8080 -parts 8
//	neutrality fleet work  -addr http://host:8080 -dir /scratch/w1
//
// `serve` owns the grid's partition assignments and hands them to
// workers under time-bounded leases; `work` pulls assignments, runs
// them as resumable sweep partitions, heartbeats its frontier, and
// ships the partition aggregate with completion. Dead workers' leases
// expire and re-dispatch with backoff; stragglers are speculatively
// re-issued (first completion wins; the copies are byte-identical by
// construction). When every worker directory is reachable from the
// server, the commit reconstitutes the full byte-identical single-run
// directory; otherwise it degrades to the exact aggregate summary.
func cmdFleet(ctx context.Context, args []string) {
	if len(args) < 1 {
		log.Print("usage: neutrality fleet serve|work [flags]")
		os.Exit(exitUsage)
	}
	switch args[0] {
	case "serve":
		cmdFleetServe(ctx, args[1:])
	case "work":
		cmdFleetWork(ctx, args[1:])
	default:
		log.Printf("unknown fleet subcommand %q (try: serve, work)", args[0])
		os.Exit(exitUsage)
	}
}

func cmdFleetServe(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("fleet serve", flag.ExitOnError)
	gridFile := fs.String("grid", "", "grid spec JSON file (workers fetch it from the server)")
	demo := fs.Bool("demo", false, "use the built-in demonstration grid")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address for the fleet protocol")
	out := fs.String("out", "", "merged output directory (required)")
	parts := fs.Int("parts", 8, "number of partitions to split the grid into")
	shards := fs.Int("shards", 1, "output shards per the sweep layout")
	seed := fs.Int64("seed", 1, "base seed")
	lease := fs.Duration("lease", 15*time.Second, "assignment lease TTL; missed heartbeats past it re-dispatch the partition")
	speculate := fs.Duration("speculate-after", 0, "re-issue a still-leased partition to an idle worker after this long (0 = 2x lease, negative disables)")
	maxAttempts := fs.Int("max-attempts", 20, "fail the fleet when one partition burns this many dispatches (0 = unlimited)")
	uploadDir := fs.String("upload-dir", "", "staging directory for worker artifact uploads: workers ship hash-verified shard files here, so the commit stays byte-identical without a shared filesystem")
	quiet := fs.Bool("quiet", false, "suppress the progress meter on stderr")
	fs.Parse(args)

	g := loadGrid(*demo, *gridFile)
	if *out == "" {
		log.Print("-out is required")
		os.Exit(exitUsage)
	}
	o, err := neutrality.NewFleet(g, neutrality.FleetConfig{
		Parts: *parts, Shards: *shards, BaseSeed: *seed,
		Lease: *lease, SpeculateAfter: *speculate, MaxAttempts: *maxAttempts,
		UploadDir: *uploadDir,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: neutrality.NewFleetServer(o)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "fleet %s: %d cells in %d partitions, serving on %s\n",
		g.Name, g.Cells(), *parts, ln.Addr())
	fmt.Fprintf(os.Stderr, "start workers with: neutrality fleet work -addr http://%s -dir DIR\n", ln.Addr())

	if !*quiet {
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				st := o.Status()
				fmt.Fprintf(os.Stderr, "\r%d/%d partitions, %d/%d cells", st.DoneParts, st.Parts, st.DoneCells, st.Cells)
			}
		}()
	}

	if err := o.Wait(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			// Interrupted mid-fleet: the workers' checkpoints survive; a
			// restarted serve re-dispatches and salvage picks them up.
			fatalResumable(fmt.Errorf("fleet interrupted (restart serve and workers to continue): %w", err))
		}
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	res, err := o.Commit(ctx, *out)
	if err != nil {
		fatal(err)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "warning: degraded to aggregate-only commit (summary is still exact): %v\n", res.Reason)
	} else {
		fmt.Fprintf(os.Stderr, "merged %d cells into %s\n", res.Cells, res.Dir)
	}
	fmt.Print(res.Summary)
}

func cmdFleetWork(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("fleet work", flag.ExitOnError)
	addr := fs.String("addr", "", "fleet server base URL, e.g. http://host:8080 (required)")
	id := fs.String("id", "", "worker name in server status (default: worker-<pid>)")
	dir := fs.String("dir", "", "working directory root for partition checkpoints (required)")
	workers := fs.Int("workers", 0, "parallel sweep workers per partition (0 = one per CPU)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell watchdog; a cell over this deadline fails resumably (0 = none)")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle re-acquire interval")
	heartbeat := fs.Duration("heartbeat", 2*time.Second, "lease-extension interval (keep well under the server's -lease)")
	quiet := fs.Bool("quiet", false, "suppress the progress meter on stderr")
	fs.Parse(args)

	if *addr == "" || *dir == "" {
		log.Print("fleet work needs -addr and -dir")
		os.Exit(exitUsage)
	}
	cl := &neutrality.FleetClient{Base: *addr}
	g, _, _, err := cl.FetchSpec(ctx)
	if err != nil {
		fatal(fmt.Errorf("fetching the fleet spec from %s: %w", *addr, err))
	}
	fmt.Fprintf(os.Stderr, "fleet %s: %d cells, working under %s\n", g.Name, g.Cells(), *dir)

	opt := neutrality.FleetWorkerOptions{
		ID: *id, Workers: *workers, Dir: *dir,
		CellTimeout: *cellTimeout, Poll: *poll, Heartbeat: *heartbeat,
	}
	if !*quiet {
		opt.Progress = func(cell int) {
			fmt.Fprintf(os.Stderr, "\rcell %d done", cell)
		}
	}
	if err := neutrality.FleetWork(ctx, g, cl, opt); err != nil {
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if errors.Is(err, context.Canceled) {
			fatalResumable(fmt.Errorf("worker interrupted (checkpoints under %s survive; restart to continue): %w", *dir, err))
		}
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintln(os.Stderr, "fleet complete; this worker is done")
}
