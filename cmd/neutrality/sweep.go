package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"neutrality"
)

// cmdSweep runs a declarative scenario grid on the sweep orchestration
// engine: sharded JSONL records, online aggregation, resumable
// checkpoints.
//
//	neutrality sweep -demo -out DIR              # built-in 1,000-cell grid
//	neutrality sweep -grid spec.json -out DIR    # a declared grid
//	neutrality sweep -demo -print-spec           # emit the JSON spec
//	neutrality sweep -grid spec.json -out DIR -resume   # continue
//
// The summary on stdout and every artifact in -out are byte-identical
// for every -workers value; progress and timing go to stderr.
func cmdSweep(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	gridFile := fs.String("grid", "", "grid spec JSON file (see -print-spec for the format)")
	demo := fs.Bool("demo", false, "use the built-in demonstration grid (policer rate x discrimination fraction x topology)")
	printSpec := fs.Bool("print-spec", false, "print the grid's JSON spec and exit (edit it, then pass via -grid)")
	out := fs.String("out", "", "sweep directory for shard JSONL files and the checkpoint manifest (empty = in-memory)")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU); never affects output bytes")
	shards := fs.Int("shards", 1, "output shards; cell i lands in shard i mod shards")
	seed := fs.Int64("seed", 1, "base seed; each cell derives its seed from (seed, cell)")
	resume := fs.Bool("resume", false, "resume an interrupted sweep in -out (validates the spec fingerprint)")
	quiet := fs.Bool("quiet", false, "suppress the progress meter on stderr")
	fs.Parse(args)

	var g *neutrality.Grid
	switch {
	case *demo && *gridFile != "":
		log.Fatal("pass either -demo or -grid, not both")
	case *demo:
		g = neutrality.DemoSweepGrid()
	case *gridFile != "":
		f, err := os.Open(*gridFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := neutrality.ParseGridJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		g = spec
	default:
		log.Fatal("pass -grid FILE or -demo (and see -print-spec)")
	}
	if err := neutrality.ValidateSweepGrid(g); err != nil {
		log.Fatal(err)
	}
	if *printSpec {
		os.Stdout.Write(g.MarshalCanonical())
		return
	}
	if *out == "" && *resume {
		log.Fatal("-resume needs -out")
	}

	total := g.Cells()
	fmt.Fprintf(os.Stderr, "sweep %s: %d cells (%d axes), scale=%g%%, %gs per cell, shards=%d\n",
		g.Name, total, len(g.Axes), g.Base.ScaleFactor*100, g.Base.DurationSec, *shards)
	opt := neutrality.SweepOptions{
		Workers:  *workers,
		Shards:   *shards,
		BaseSeed: *seed,
		Dir:      *out,
		Resume:   *resume,
	}
	if !*quiet {
		opt.Progress = func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	res, err := neutrality.RunSweep(ctx, g, opt)
	if err != nil {
		if *out != "" && errors.Is(err, context.Canceled) {
			// An interruption leaves a valid checkpoint; tell the
			// operator how to go on. Other failures (spec mismatch,
			// directory already in use, I/O) are not resumable as-is.
			log.Printf("sweep interrupted (resume with -resume -out %s)", *out)
		}
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	executed := res.Total - res.Resumed
	if executed > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "executed %d cells in %.1fs (%.1f cells/sec, %d resumed from checkpoint)\n",
			executed, elapsed.Seconds(), float64(executed)/elapsed.Seconds(), res.Resumed)
	}
	fmt.Print(res.Agg.Summary())
}
