package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"neutrality"
)

// loadGrid resolves the shared -demo/-grid flag pair of the sweep and
// merge subcommands into a validated grid spec.
func loadGrid(demo bool, gridFile string) *neutrality.Grid {
	var g *neutrality.Grid
	switch {
	case demo && gridFile != "":
		log.Fatal("pass either -demo or -grid, not both")
	case demo:
		g = neutrality.DemoSweepGrid()
	case gridFile != "":
		f, err := os.Open(gridFile)
		if err != nil {
			log.Fatal(err)
		}
		spec, err := neutrality.ParseGridJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		g = spec
	default:
		log.Fatal("pass -grid FILE or -demo (and see sweep -print-spec)")
	}
	if err := neutrality.ValidateSweepGrid(g); err != nil {
		log.Fatal(err)
	}
	return g
}

// parsePartition parses a -partition k/n value strictly: any
// malformed or trailing input is rejected rather than silently
// running the wrong cell range of a fleet.
func parsePartition(s string) (neutrality.SweepPartition, error) {
	var p neutrality.SweepPartition
	if s == "" {
		return p, nil
	}
	ks, ns, ok := strings.Cut(s, "/")
	if ok {
		var errK, errN error
		p.K, errK = strconv.Atoi(ks)
		p.N, errN = strconv.Atoi(ns)
		ok = errK == nil && errN == nil && p.K >= 1 && p.N >= 1 && p.K <= p.N
	}
	if !ok {
		return neutrality.SweepPartition{}, fmt.Errorf("-partition must be k/n with 1 <= k <= n, got %q", s)
	}
	return p, nil
}

// cmdSweep runs a declarative scenario grid on the sweep orchestration
// engine: sharded JSONL records, online aggregation, resumable
// checkpoints.
//
//	neutrality sweep -demo -out DIR              # built-in 1,000-cell grid
//	neutrality sweep -grid spec.json -out DIR    # a declared grid
//	neutrality sweep -demo -print-spec           # emit the JSON spec
//	neutrality sweep -grid spec.json -out DIR -resume   # continue
//	neutrality sweep -grid spec.json -out DIR -partition 2/4  # one shard-aligned
//	                                             # cell range of a distributed run
//
// The summary on stdout and every artifact in -out are byte-identical
// for every -workers value; progress and timing go to stderr. A
// -partition k/n run covers one deterministic cell range of the grid;
// `neutrality merge` reconstitutes the single-run artifacts from the
// n partition directories.
func cmdSweep(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	gridFile := fs.String("grid", "", "grid spec JSON file (see -print-spec for the format)")
	demo := fs.Bool("demo", false, "use the built-in demonstration grid (policer rate x discrimination fraction x topology)")
	printSpec := fs.Bool("print-spec", false, "print the grid's JSON spec and exit (edit it, then pass via -grid)")
	out := fs.String("out", "", "sweep directory for shard JSONL files and the checkpoint manifest (empty = in-memory)")
	workers := fs.Int("workers", 0, "parallel workers (0 = one per CPU); never affects output bytes")
	shards := fs.Int("shards", 1, "output shards; cell i lands in shard i mod shards")
	seed := fs.Int64("seed", 1, "base seed; each cell derives its seed from (seed, cell)")
	resume := fs.Bool("resume", false, "resume an interrupted sweep in -out (validates the spec fingerprint)")
	partition := fs.String("partition", "", "run only partition k/n of the grid (e.g. 2/4): a deterministic shard-aligned cell range; merge the n directories with 'neutrality merge'")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell watchdog: a cell over this deadline aborts the sweep resumably (0 = none)")
	quiet := fs.Bool("quiet", false, "suppress the progress meter on stderr")
	fs.Parse(args)

	g := loadGrid(*demo, *gridFile)
	if *printSpec {
		os.Stdout.Write(g.MarshalCanonical())
		return
	}
	if *out == "" && *resume {
		log.Print("-resume needs -out")
		os.Exit(exitUsage)
	}
	part, err := parsePartition(*partition)
	if err != nil {
		log.Print(err)
		os.Exit(exitUsage)
	}

	total := g.Cells()
	fmt.Fprintf(os.Stderr, "sweep %s: %d cells (%d axes), scale=%g%%, %gs per cell, shards=%d\n",
		g.Name, total, len(g.Axes), g.Base.ScaleFactor*100, g.Base.DurationSec, *shards)
	opt := neutrality.SweepOptions{
		Workers:     *workers,
		Shards:      *shards,
		BaseSeed:    *seed,
		Dir:         *out,
		Resume:      *resume,
		Partition:   part,
		CellTimeout: *cellTimeout,
	}
	if !*quiet {
		opt.Progress = func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	res, err := neutrality.RunSweep(ctx, g, opt)
	if err != nil {
		resumable := *out != "" &&
			(errors.Is(err, context.Canceled) || errors.Is(err, neutrality.ErrSweepIncomplete))
		if resumable {
			// An interruption or per-cell timeout leaves a valid
			// checkpoint; tell the operator how to go on. The hint
			// repeats every flag the resume validation will demand back
			// (spec, shards, seed, partition), so it works pasted
			// verbatim. Other failures (spec mismatch, directory
			// already in use, I/O) are not resumable as-is.
			flags := fmt.Sprintf(" -shards %d -seed %d", *shards, *seed)
			if *demo {
				flags = " -demo" + flags
			} else {
				flags = " -grid " + *gridFile + flags
			}
			if *partition != "" {
				flags += " -partition " + *partition
			}
			log.Printf("sweep stopped (resume with%s -resume -out %s)", flags, *out)
			fatalResumable(err)
		}
		fatal(err)
	}
	if !part.IsZero() {
		fmt.Fprintf(os.Stderr, "partition %s: cells [%d,%d) of %d\n", *partition, res.Range.Lo, res.Range.Hi, total)
	}
	elapsed := time.Since(start)
	executed := res.Total - res.Resumed
	if executed > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "executed %d cells in %.1fs (%.1f cells/sec, %d resumed from checkpoint)\n",
			executed, elapsed.Seconds(), float64(executed)/elapsed.Seconds(), res.Resumed)
	}
	fmt.Print(res.Agg.Summary())
}
