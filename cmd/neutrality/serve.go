package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"neutrality"
)

// cmdServe runs the streaming inference service: a long-running HTTP
// receiver that ingests measurement records (JSON lines of
// {source,seq,interval,path,sent,lost} over POST /v1/ingest), folds
// them into the measurement table online, closes an epoch on a record
// count (and optionally a wall-clock tick), re-runs the inference per
// epoch, and serves the latest verdict, per-epoch summaries, and
// operational counters over GET /v1/verdict, /v1/summary, /v1/status.
//
//	neutrality serve -net figure4 -addr :8090 -dir /var/lib/nserve
//
// With -dir the service journals every accepted record (checksummed
// framing across -journal-shards files, FORMAT.md); a restart with
// -resume replays the journal to byte-identical verdicts, and
// -compact-every N checkpoints the folded state into a hash-verified
// snapshot every N epochs and truncates the journals, bounding disk.
// Delivery is at-least-once and idempotent: per-source sequence
// numbers dedup retries (strictly in-order per source — a record below
// its source's high-water mark that was never seen is rejected as
// out-of-order so the sender can detect loss), and a full epoch buffer
// answers 429 + Retry-After rather than growing without bound.
//
// Scale-out runs as a two-level tree. Leaves ingest disjoint source
// populations and ship their closed epochs upstream:
//
//	neutrality serve -net figure4 -leaf vp-east -root-url http://root:8090
//
// The root folds the leaf reports and serves the tree-wide verdict —
// byte-identical to a single instance ingesting the union:
//
//	neutrality serve -net figure4 -root -leaves 2 -addr :8090 -dir /var/lib/nroot
//
// With -dir the root logs every accepted report before acking it, so a
// restart with -resume restores the per-leaf delivery marks and the
// fold — running leaves just keep shipping. Without -dir a root
// restart requires restarting every leaf from empty state (leaves drop
// reports once acked).
func cmdServe(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	netName := fs.String("net", "figure4", "serving topology name")
	addr := fs.String("addr", "127.0.0.1:8090", "listen address for the ingest protocol")
	dir := fs.String("dir", "", "durable state directory: the ingest journal, or the report log in -root mode (empty = in-memory only)")
	resume := fs.Bool("resume", false, "adopt an existing journal or root log in -dir (replays to byte-identical state)")
	epochRecords := fs.Int("epoch-records", 4096, "close an epoch after this many accepted records (0 = wall-clock only)")
	epochInterval := fs.Duration("epoch-interval", 0, "also close a non-empty epoch on this wall-clock period (0 = disabled)")
	maxPending := fs.Int("max-pending", 0, "open-epoch buffer cap before 429 backpressure (0 = epoch-records, or 65536 when count-close is off)")
	journalShards := fs.Int("journal-shards", 1, "partition the journal into this many files by source hash")
	compactEvery := fs.Int("compact-every", 0, "snapshot + truncate the journal every N epochs (0 = never)")
	leaf := fs.String("leaf", "", "run as a named leaf: queue closed-epoch reports for a root")
	rootURL := fs.String("root-url", "", "ship queued epoch reports to this root (requires -leaf)")
	root := fs.Bool("root", false, "run as an aggregation root folding leaf epoch reports (POST /v1/epoch)")
	leaves := fs.Int("leaves", 0, "expected leaf count in -root mode (an epoch folds when every leaf delivered it)")
	seed := fs.Int64("seed", 1, "measurement-processing seed")
	lossThreshold := fs.Float64("loss-threshold", 0.01, "per-interval loss fraction counted as congestion")
	quiet := fs.Bool("quiet", false, "suppress the epoch log on stderr")
	fs.Parse(args)

	n, _ := pick(*netName)
	opts := neutrality.DefaultMeasureOptions()
	opts.Seed = *seed
	opts.LossThreshold = *lossThreshold

	if *root {
		cmdServeRoot(ctx, n, *netName, *leaves, *addr, *dir, *resume, opts)
		return
	}
	if *rootURL != "" && *leaf == "" {
		log.Fatal("-root-url requires -leaf (the leaf's name in the tree)")
	}

	svc, err := neutrality.NewServe(neutrality.ServeConfig{
		Net: n, NetName: *netName, Opts: opts,
		EpochRecords: *epochRecords, MaxPending: *maxPending,
		Dir: *dir, Resume: *resume,
		JournalShards: *journalShards, CompactEvery: *compactEvery,
		Leaf: *leaf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	h := neutrality.NewServeServer(svc)
	h.EpochInterval = *epochInterval
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	defer srv.Close()
	st := svc.Status()
	fmt.Fprintf(os.Stderr, "serve %s: %d paths, listening on %s (resumed: %d records, %d epochs)\n",
		*netName, n.NumPaths(), ln.Addr(), st.Records, st.Epochs)
	fmt.Fprintf(os.Stderr, "ingest with: curl --data-binary @records.jsonl http://%s/v1/ingest\n", ln.Addr())

	shipDone := make(chan error, 1)
	if *rootURL != "" {
		sh := &neutrality.ServeShipper{S: svc, URL: *rootURL}
		go func() { shipDone <- sh.Run(ctx) }()
		fmt.Fprintf(os.Stderr, "leaf %q shipping epoch reports to %s\n", *leaf, *rootURL)
	}

	if *epochInterval > 0 {
		go func() {
			t := time.NewTicker(*epochInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if closed, err := svc.CloseEpoch(); err != nil {
					log.Printf("epoch close: %v", err)
				} else if closed && !*quiet {
					st := svc.Status()
					fmt.Fprintf(os.Stderr, "epoch %d closed at %d records (%.1f ms inference)\n",
						st.Epochs, st.Records, st.LastInferMillis)
				}
			}
		}()
	}

	select {
	case <-ctx.Done():
	case err := <-shipDone:
		// The shipper only returns early on a permanent rejection: the
		// root refused a report as invalid, so shipping cannot proceed.
		if err != nil {
			fatal(err)
		}
	}
	// Graceful shutdown: flush the open epoch into a verdict, then
	// checkpoint the journal so a -resume restart replays everything.
	if _, err := svc.CloseEpoch(); err != nil {
		fatal(err)
	}
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	st = svc.Status()
	fmt.Fprintf(os.Stderr, "\nserve stopped cleanly: %d records, %d epochs, %d duplicates dropped\n",
		st.Records, st.Epochs, st.Duplicates)
}

// cmdServeRoot runs the aggregation root: it accepts sealed leaf epoch
// reports (POST /v1/epoch, idempotent per-leaf in-order delivery),
// folds complete tree epochs in canonical leaf order, and serves the
// tree-wide verdict. With -dir every accepted report is logged before
// it is acked, and a -resume restart replays the log to the exact
// pre-restart marks and fold; without it, a root restart requires a
// full-tree restart from empty state.
func cmdServeRoot(ctx context.Context, n *neutrality.Network, netName string, leaves int, addr, dir string, resume bool, opts neutrality.MeasureOptions) {
	r, err := neutrality.NewServeRoot(neutrality.ServeRootConfig{
		Net: n, NetName: netName, Leaves: leaves, Opts: opts,
		Dir: dir, Resume: resume,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: neutrality.NewServeRootServer(r)}
	go srv.Serve(ln)
	defer srv.Close()
	st := r.Status()
	fmt.Fprintf(os.Stderr, "serve root %s: %d paths, expecting %d leaves, listening on %s (resumed: %d records, %d epochs)\n",
		netName, n.NumPaths(), leaves, ln.Addr(), st.Records, st.Epochs)

	<-ctx.Done()
	if err := r.Close(); err != nil {
		fatal(err)
	}
	st = r.Status()
	fmt.Fprintf(os.Stderr, "\nroot stopped: %d records over %d epochs from %d leaves (%d duplicate deliveries)\n",
		st.Records, st.Epochs, st.Leaves, st.Duplicates)
}
