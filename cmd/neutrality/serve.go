package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"neutrality"
)

// cmdServe runs the streaming inference service: a long-running HTTP
// receiver that ingests measurement records (JSON lines of
// {source,seq,interval,path,sent,lost} over POST /v1/ingest), folds
// them into the measurement table online, closes an epoch on a record
// count (and optionally a wall-clock tick), re-runs the inference per
// epoch, and serves the latest verdict, per-epoch summaries, and
// operational counters over GET /v1/verdict, /v1/summary, /v1/status.
//
//	neutrality serve -net figure4 -addr :8090 -dir /var/lib/nserve
//
// With -dir the service journals every accepted record (checksummed
// framing, FORMAT.md); a restart with -resume replays the journal to
// byte-identical verdicts. Delivery is at-least-once and idempotent:
// per-source sequence numbers dedup retries, and a full epoch buffer
// answers 429 + Retry-After rather than growing without bound.
func cmdServe(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	netName := fs.String("net", "figure4", "serving topology name")
	addr := fs.String("addr", "127.0.0.1:8090", "listen address for the ingest protocol")
	dir := fs.String("dir", "", "journal directory for checkpoint/resume (empty = in-memory only)")
	resume := fs.Bool("resume", false, "adopt an existing journal in -dir (replays to byte-identical state)")
	epochRecords := fs.Int("epoch-records", 4096, "close an epoch after this many accepted records (0 = wall-clock only)")
	epochInterval := fs.Duration("epoch-interval", 0, "also close a non-empty epoch on this wall-clock period (0 = disabled)")
	maxPending := fs.Int("max-pending", 0, "open-epoch buffer cap before 429 backpressure (0 = epoch-records, or 65536 when count-close is off)")
	seed := fs.Int64("seed", 1, "measurement-processing seed")
	lossThreshold := fs.Float64("loss-threshold", 0.01, "per-interval loss fraction counted as congestion")
	quiet := fs.Bool("quiet", false, "suppress the epoch log on stderr")
	fs.Parse(args)

	n, _ := pick(*netName)
	opts := neutrality.DefaultMeasureOptions()
	opts.Seed = *seed
	opts.LossThreshold = *lossThreshold
	svc, err := neutrality.NewServe(neutrality.ServeConfig{
		Net: n, NetName: *netName, Opts: opts,
		EpochRecords: *epochRecords, MaxPending: *maxPending,
		Dir: *dir, Resume: *resume,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: neutrality.NewServeServer(svc)}
	go srv.Serve(ln)
	defer srv.Close()
	st := svc.Status()
	fmt.Fprintf(os.Stderr, "serve %s: %d paths, listening on %s (resumed: %d records, %d epochs)\n",
		*netName, n.NumPaths(), ln.Addr(), st.Records, st.Epochs)
	fmt.Fprintf(os.Stderr, "ingest with: curl --data-binary @records.jsonl http://%s/v1/ingest\n", ln.Addr())

	if *epochInterval > 0 {
		go func() {
			t := time.NewTicker(*epochInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				if closed, err := svc.CloseEpoch(); err != nil {
					log.Printf("epoch close: %v", err)
				} else if closed && !*quiet {
					st := svc.Status()
					fmt.Fprintf(os.Stderr, "epoch %d closed at %d records (%.1f ms inference)\n",
						st.Epochs, st.Records, st.LastInferMillis)
				}
			}
		}()
	}

	<-ctx.Done()
	// Graceful shutdown: flush the open epoch into a verdict, then
	// checkpoint the journal so a -resume restart replays everything.
	if _, err := svc.CloseEpoch(); err != nil {
		fatal(err)
	}
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	st = svc.Status()
	fmt.Fprintf(os.Stderr, "\nserve stopped cleanly: %d records, %d epochs, %d duplicates dropped\n",
		st.Records, st.Epochs, st.Duplicates)
}
