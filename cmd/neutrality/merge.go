package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"neutrality"
)

// cmdMerge reconstitutes a single-run sweep directory from partition
// directories produced by `sweep -partition k/n` runs of the same
// grid:
//
//	neutrality sweep -demo -out p1 -partition 1/4 -seed 1
//	…                                 (one process or machine each)
//	neutrality sweep -demo -out p4 -partition 4/4 -seed 1
//	neutrality merge -demo -out merged p1 p2 p3 p4
//
// Fingerprints, shard counts, and seeds are verified, ranges must be
// disjoint and complete (gaps and unfinished partitions are reported
// as resumable frontiers), and the merged manifest, shard files, and
// aggregate summary are byte-identical to a single-process run of the
// same grid, shards, and seed.
func cmdMerge(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	gridFile := fs.String("grid", "", "grid spec JSON file the partitions were run from")
	demo := fs.Bool("demo", false, "use the built-in demonstration grid")
	out := fs.String("out", "", "output directory for the merged sweep (required)")
	fs.Parse(args)

	g := loadGrid(*demo, *gridFile)
	if *out == "" {
		log.Print("-out is required")
		os.Exit(exitUsage)
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		log.Print("pass the partition directories to merge as arguments")
		os.Exit(exitUsage)
	}

	start := time.Now()
	res, err := neutrality.MergeSweep(g, dirs, *out)
	if err != nil {
		// An unfinished partition or coverage gap exits
		// resumable-incomplete (4); spec mismatches exit validation (3).
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "merged %d partitions (%d cells) into %s in %.2fs\n",
		len(dirs), res.Total, *out, time.Since(start).Seconds())
	fmt.Print(res.Agg.Summary())
}
