package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"neutrality"
)

// cmdVerify scrubs sweep directories against their spec: the manifest,
// every shard's SHA-256 content hash, and every record's CRC frame.
//
//	neutrality verify -grid spec.json dir1 [dir2 ...]     # read-only scrub
//	neutrality verify -demo -repair dir                   # re-derive damage
//
// Without -repair the command mutates nothing and exits 3 (validation
// failure) when any directory is damaged — corruption is a property of
// the artifacts, and rerunning the same invocation cannot succeed.
// With -repair, damaged records are re-derived from their seeds
// through the ordinary per-cell executor and spliced back, so the
// repaired directory is byte-identical to an uncorrupted run; the
// directories are then re-verified.
func cmdVerify(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	gridFile := fs.String("grid", "", "grid spec JSON file the directories were recorded for")
	demo := fs.Bool("demo", false, "use the built-in demonstration grid")
	repair := fs.Bool("repair", false, "re-derive damaged cells from their seeds and splice them back in place")
	workers := fs.Int("workers", 0, "parallel workers for -repair re-derivation (0 = one per CPU)")
	fs.Parse(args)
	dirs := fs.Args()
	if len(dirs) == 0 {
		log.Print("verify needs at least one sweep directory")
		os.Exit(exitUsage)
	}
	g := loadGrid(*demo, *gridFile)

	var firstErr error
	for _, dir := range dirs {
		rep, err := neutrality.VerifySweep(g, dir)
		if err != nil {
			// No verifiable identity (destroyed/corrupt manifest, wrong
			// spec). Repair cannot proceed either: rebuilding a manifest
			// needs the partition identity, which only an orchestrator
			// holds. Report and classify.
			fatal(err)
		}
		if rep.Clean {
			records := 0
			for _, s := range rep.Shards {
				records += s.Records
			}
			fmt.Printf("%s: clean (%d records in %d shards, frontier %d/%d)\n",
				dir, records, len(rep.Shards), rep.Info.Completed, rep.Info.Range.Len())
			continue
		}
		for _, s := range rep.Shards {
			if len(s.Quarantine) == 0 && s.HashOK {
				continue
			}
			switch {
			case s.Missing:
				fmt.Printf("%s: shard %d missing (%d cells quarantined)\n", dir, s.Shard, len(s.Quarantine))
			default:
				fmt.Printf("%s: shard %d damaged (hash ok=%v, %d cells quarantined, %d tail bytes)\n",
					dir, s.Shard, s.HashOK, len(s.Quarantine), s.TailBytes)
			}
		}
		if !*repair {
			if firstErr == nil {
				firstErr = rep.Err()
			}
			log.Print(rep.Err())
			continue
		}
		fixed, err := neutrality.RepairSweep(ctx, g, dir, neutrality.SweepRepairOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		again, err := neutrality.VerifySweep(g, dir)
		if err != nil {
			fatal(err)
		}
		if !again.Clean {
			fatal(fmt.Errorf("%s: still damaged after repair: %w", dir, again.Err()))
		}
		fmt.Printf("%s: repaired (%d cells re-derived, frontier %d/%d, verified clean)\n",
			dir, len(fixed.Repaired), fixed.Completed, fixed.Range.Len())
	}
	if firstErr != nil {
		os.Exit(classify(firstErr))
	}
}
