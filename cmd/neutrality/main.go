// Command neutrality is the CLI front end of the library: it emulates
// workloads on the built-in topologies, runs the inference algorithm on
// the resulting (or synthetic) observations, and prints the theory view of
// a topology.
//
// Usage:
//
//	neutrality topo    -net figure1|figure2|figure4|figure5|a|b
//	neutrality theory  -net ... [-nonneutral l1,l2]
//	neutrality emulate -net a|b [-diff police|shape|none] [-rate 0.3]
//	                   [-duration 90] [-scale 0.1] [-seed 1]
//	                   [-runs 1] [-workers 0]
//	neutrality infer   -net ... [-gap 0.5] [-intervals 6000] [-seed 1]
//	neutrality sweep   -grid spec.json|-demo [-out dir] [-workers 0]
//	                   [-shards 1] [-seed 1] [-resume] [-print-spec]
//	                   [-partition k/n] [-cell-timeout 0]
//	neutrality merge   -grid spec.json|-demo -out dir part1 part2 ...
//	neutrality verify  -grid spec.json|-demo [-repair] dir1 [dir2 ...]
//	neutrality fleet   serve -grid spec.json|-demo -out dir [-addr ...]
//	                   [-parts 8] [-lease 15s] [-max-attempts 20]
//	                   [-upload-dir dir]
//	neutrality fleet   work -addr URL -dir DIR [-workers 0]
//	                   [-cell-timeout 0] [-heartbeat 2s]
//	neutrality serve   -net ... [-addr :8090] [-dir DIR] [-resume]
//	                   [-epoch-records 4096] [-epoch-interval 0]
//	                   [-max-pending 0] [-journal-shards 1]
//	                   [-compact-every 0] [-seed 1] [-loss-threshold 0.01]
//	                   [-leaf NAME -root-url URL]
//	neutrality serve   -root -leaves N -net ... [-addr :8090]
//
// `emulate` runs packet-level TCP emulation and then inference; `infer`
// uses the fast synthetic substrate with a configurable violation gap;
// `sweep` executes a declarative scenario grid on the sweep
// orchestration engine (sharded JSONL records, online aggregation,
// resumable checkpoints — byte-identical for every -workers value);
// `merge` reconstitutes the single-run artifacts from `sweep
// -partition k/n` partition directories, byte-identically; `verify`
// scrubs a sweep directory's checksummed artifacts (per-record CRC
// frames, per-shard SHA-256) and with -repair re-derives damaged
// cells from their seeds, byte-identically; `fleet` runs the same
// distributed sweep fault-tolerantly — leased partition assignment,
// heartbeat-driven expiry with backoff, speculative re-dispatch of
// stragglers, checkpoint salvage, full-fidelity shard uploads to a
// staging directory, self-healing commits, and graceful degradation
// to exact aggregate-only results; `serve` is the streaming face of
// the inference — a long-running HTTP service that ingests measurement
// records (at-least-once, per-source sequence dedup), folds them into
// the measurement table online, re-runs the inference at epoch
// boundaries, and serves the latest verdict; with a journal directory
// it checkpoints every accepted record (across -journal-shards files,
// compacting into hash-verified snapshots every -compact-every epochs)
// and resumes to byte-identical state; `serve -leaf NAME -root-url URL`
// ships each closed epoch to an aggregation root, and `serve -root
// -leaves N` folds those reports into a tree-wide verdict
// byte-identical to a single instance ingesting the union.
// With -runs N > 1, emulate replicates the experiment N times with
// per-run seeds derived from (-seed, run index), fans the replicas out
// across a bounded worker pool (-workers, default one per CPU), and
// aggregates the verdicts; the output is identical for every -workers
// value.
//
// The sweep/merge/fleet commands exit with distinct codes so
// orchestration scripts can branch without parsing stderr: 0 success,
// 1 fatal, 2 usage, 3 validation failure (rerunning cannot succeed),
// 4 resumable incomplete (rerun with -resume / restart the fleet).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"neutrality"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("neutrality: ")
	if len(os.Args) < 2 {
		usage()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "topo":
		cmdTopo(args)
	case "theory":
		cmdTheory(args)
	case "emulate":
		cmdEmulate(ctx, args)
	case "infer":
		cmdInfer(args)
	case "sweep":
		cmdSweep(ctx, args)
	case "merge":
		cmdMerge(args)
	case "verify":
		cmdVerify(ctx, args)
	case "fleet":
		cmdFleet(ctx, args)
	case "serve":
		cmdServe(ctx, args)
	case "help", "-h", "--help":
		usage()
	default:
		log.Fatalf("unknown command %q (try: topo, theory, emulate, infer, sweep, merge, verify, fleet, serve)", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: neutrality <command> [flags]

commands:
  topo     print a built-in topology (figure1|figure2|figure4|figure5|a|b)
  theory   observability and identifiability analysis of a topology
  emulate  run packet-level TCP emulation + inference (topologies a|b)
  infer    run inference on fast synthetic observations
  sweep    run a declarative scenario grid: sharded JSONL records,
           online aggregation, resumable checkpoints (-demo for the
           built-in 1,000-cell grid, -print-spec for the JSON format,
           -partition k/n for one range of a distributed run)
  merge    reconstitute the single-run artifacts from the partition
           directories of a distributed sweep, byte-identically
  verify   scrub sweep directories against their spec (per-record CRC
           frames, per-shard SHA-256); -repair re-derives damaged
           cells from their seeds, byte-identically
  fleet    fault-tolerant distributed sweep: 'serve' leases partitions
           to workers (expiry + backoff + speculative re-dispatch),
           'work' runs them as resumable checkpoints, ships exact
           aggregates, and uploads hash-verified shard files when the
           server stages them (-upload-dir); commit is byte-identical
           (self-healing corrupt sources), or degrades to the exact
           summary when no full-fidelity copy is recoverable
  serve    streaming inference service: POST /v1/ingest measurement
           records (JSON lines, gzip ok, idempotent via per-source
           seqs), epochs close on record count and/or wall clock,
           GET /v1/verdict|/v1/summary|/v1/status; -dir journals every
           record so -resume replays to byte-identical verdicts
           (-journal-shards partitions the journal by source,
           -compact-every snapshots + truncates to bound disk); scale
           out as a tree: -leaf NAME -root-url URL ships closed epochs
           to a 'serve -root -leaves N' aggregator whose verdict is
           byte-identical to one instance ingesting the union

exit codes (sweep/merge/verify/fleet/serve): 0 ok, 1 fatal, 2 usage,
  3 validation failure (incl. artifact corruption), 4 resumable incomplete

run 'neutrality <command> -h' for command flags`)
	os.Exit(2)
}

// pick returns the requested built-in network plus, when known, its
// differentiating links.
func pick(name string) (*neutrality.Network, []neutrality.LinkID) {
	switch strings.ToLower(name) {
	case "figure1", "fig1":
		n := neutrality.Figure1()
		l, _ := n.LinkByName("l1")
		return n, []neutrality.LinkID{l.ID}
	case "figure2", "fig2":
		n := neutrality.Figure2()
		l, _ := n.LinkByName("l1")
		return n, []neutrality.LinkID{l.ID}
	case "figure4", "fig4":
		n := neutrality.Figure4()
		l1, _ := n.LinkByName("l1")
		l2, _ := n.LinkByName("l2")
		return n, []neutrality.LinkID{l1.ID, l2.ID}
	case "figure5", "fig5":
		n := neutrality.Figure5()
		l, _ := n.LinkByName("l1")
		return n, []neutrality.LinkID{l.ID}
	case "a", "topoa":
		t := neutrality.NewTopologyA()
		return t.Net, []neutrality.LinkID{t.Shared}
	case "b", "topob":
		t := neutrality.NewTopologyB()
		return t.InferenceNet, t.Policers
	default:
		log.Fatalf("unknown topology %q", name)
		return nil, nil
	}
}

func cmdTopo(args []string) {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	netName := fs.String("net", "figure4", "topology name")
	fs.Parse(args)
	n, diff := pick(*netName)
	fmt.Print(n.Describe())
	names := make([]string, len(diff))
	for i, l := range diff {
		names[i] = n.Link(l).Name
	}
	fmt.Printf("differentiating links in the standard scenario: %s\n", strings.Join(names, ", "))
}

func cmdTheory(args []string) {
	fs := flag.NewFlagSet("theory", flag.ExitOnError)
	netName := fs.String("net", "figure4", "topology name")
	nn := fs.String("nonneutral", "", "comma-separated link names to treat as non-neutral (default: scenario links)")
	fs.Parse(args)
	n, diff := pick(*netName)
	if *nn != "" {
		diff = nil
		for _, name := range strings.Split(*nn, ",") {
			l, ok := n.LinkByName(strings.TrimSpace(name))
			if !ok {
				log.Fatalf("no link %q", name)
			}
			diff = append(diff, l.ID)
		}
	}

	ws := neutrality.ObservableStructural(n, diff)
	if len(ws) == 0 {
		fmt.Println("Theorem 1: violation NOT observable from external observations")
	} else {
		fmt.Println("Theorem 1: violation observable; witnesses:")
		for _, w := range ws {
			fmt.Printf("  %s (link %s, regulated class %d)\n", w.Name, n.Link(w.Link).Name, int(w.Class)+1)
		}
	}

	fmt.Println("\nnetwork slices (Algorithm 1 candidates):")
	for _, s := range neutrality.Slices(n) {
		status := "identifiable"
		if !s.Identifiable() {
			status = "too few path pairs"
		}
		fmt.Printf("  %-20s pairs=%d  %s\n", s.SeqNames(), len(s.Pairs), status)
	}
}

func cmdEmulate(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("emulate", flag.ExitOnError)
	netName := fs.String("net", "a", "topology: a or b")
	diffKind := fs.String("diff", "police", "differentiation on the standard links: police, shape, none")
	rate := fs.Float64("rate", 0.3, "policing/shaping rate (fraction of capacity)")
	duration := fs.Float64("duration", 90, "emulated seconds")
	scale := fs.Float64("scale", 0.1, "capacity scale (1.0 = paper's 100 Mbps)")
	seed := fs.Int64("seed", 1, "random seed (base seed with -runs > 1)")
	runs := fs.Int("runs", 1, "replicate the experiment this many times with derived seeds and aggregate verdicts")
	workers := fs.Int("workers", 0, "parallel workers for -runs replication (0 = one per CPU)")
	outFile := fs.String("out", "", "write raw measurements of the first run to this CSV file")
	fs.Parse(args)
	if *runs < 1 {
		log.Fatalf("-runs must be >= 1, got %d", *runs)
	}

	// runSeed keeps the single-run case byte-compatible with earlier
	// versions (the base seed itself); replicas get derived seeds.
	runSeed := func(i int) int64 {
		if *runs == 1 {
			return *seed
		}
		return neutrality.DeriveSeed(*seed, i)
	}

	var net *neutrality.Network
	var truth []neutrality.LinkID
	exps := make([]*neutrality.Experiment, *runs)
	switch strings.ToLower(*netName) {
	case "a", "topoa":
		for i := range exps {
			p := neutrality.DefaultParamsA().Scale(*scale, *duration)
			p.MeanFlowMb = [2]float64{20 * *scale, 20 * *scale}
			p.Seed = runSeed(i)
			switch *diffKind {
			case "police":
				p.Diff = neutrality.PoliceClass2(*rate)
			case "shape":
				p.Diff = neutrality.ShapeBothClasses(*rate)
			case "none":
			default:
				log.Fatalf("unknown -diff %q", *diffKind)
			}
			e, a := p.Experiment(fmt.Sprintf("cli-run%d", i))
			exps[i] = e
			net, truth = a.Net, []neutrality.LinkID{a.Shared}
		}
	case "b", "topob":
		for i := range exps {
			p := neutrality.DefaultParamsB().Scale(*scale, *duration)
			p.PoliceRate = *rate
			p.Seed = runSeed(i)
			e, b := p.Experiment(fmt.Sprintf("cli-run%d", i))
			exps[i] = e
			net, truth = b.InferenceNet, b.Policers
		}
	default:
		log.Fatalf("emulate supports topologies a and b, not %q", *netName)
	}

	results, err := neutrality.RunExperimentBatch(ctx, *workers, exps)
	if err != nil {
		log.Fatal(err)
	}
	saveCSV(*outFile, results[0].Meas)
	if *runs == 1 {
		report(net, results[0].Meas, truth)
		return
	}

	fmt.Printf("replicated %d runs (seeds derived from base seed %d)\n", *runs, *seed)
	detected := 0
	for i, run := range results {
		res := neutrality.InferMeasured(net, run.Meas, neutrality.DefaultMeasureOptions())
		m := neutrality.Evaluate(res, truth)
		verdict := "neutral"
		if res.NetworkNonNeutral() {
			verdict = "NON-NEUTRAL"
			detected++
		}
		fmt.Printf("  run %2d  seed=%-20d verdict=%-12s FN=%3.0f%% FP=%3.0f%% granularity=%.2f\n",
			i, exps[i].Seed, verdict, m.FalseNegativeRate*100, m.FalsePositiveRate*100, m.Granularity)
	}
	fmt.Printf("non-neutral verdicts: %d/%d\n", detected, *runs)
}

func report(n *neutrality.Network, meas *neutrality.Measurements, truth []neutrality.LinkID) {
	probs := neutrality.PathCongestionProb(meas, 0.01)
	fmt.Println("per-path congestion probability:")
	for i, pr := range probs {
		fmt.Printf("  %-6s class=c%d  %5.1f%%\n", n.Path(neutrality.PathID(i)).Name, int(n.ClassOf(neutrality.PathID(i)))+1, pr*100)
	}
	res := neutrality.InferMeasured(n, meas, neutrality.DefaultMeasureOptions())
	fmt.Print(neutrality.Report(res))
	m := neutrality.Evaluate(res, truth)
	fmt.Printf("vs ground truth: FN=%.0f%% FP=%.0f%% granularity=%.2f\n",
		m.FalseNegativeRate*100, m.FalsePositiveRate*100, m.Granularity)
}

func saveCSV(path string, m *neutrality.Measurements) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := neutrality.WriteMeasurementsCSV(f, m); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d intervals, %d paths)\n", path, m.Intervals(), m.NumPaths())
}

func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	netName := fs.String("net", "figure4", "topology name")
	gap := fs.Float64("gap", 0.5, "violation strength: extra −log P(cf) inflicted on class c2")
	intervals := fs.Int("intervals", 6000, "measurement intervals to simulate")
	seed := fs.Int64("seed", 1, "random seed")
	inFile := fs.String("in", "", "read raw measurements from this CSV file instead of simulating")
	fs.Parse(args)

	n, diff := pick(*netName)
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		meas, err := neutrality.ReadMeasurementsCSV(f)
		if err != nil {
			// A malformed CSV exits 3 (validation), not 1: rerunning the
			// same invocation cannot succeed.
			fatal(err)
		}
		if meas.NumPaths() != n.NumPaths() {
			log.Fatalf("measurements cover %d paths, topology %q has %d", meas.NumPaths(), *netName, n.NumPaths())
		}
		report(n, meas, diff)
		return
	}
	perf := neutrality.NewPerf(n.NumLinks(), n.NumClasses())
	for l := 0; l < n.NumLinks(); l++ {
		perf.SetNeutral(neutrality.LinkID(l), 0.01)
	}
	for _, l := range diff {
		perf.Set(l, neutrality.C1, 0.02)
		perf.Set(l, neutrality.C2, 0.02+*gap)
	}
	states := neutrality.NewSampler(n, perf, *seed).SampleIntervals(*intervals)
	meas := neutrality.SyntheticMeasurements(states, neutrality.DefaultSyntheticOptions())
	report(n, meas, diff)
}
