// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6). By default it runs at a reduced scale (10 Mbps,
// 90 s — identical load shape, fewer packets); pass -full for the paper's
// 100 Mbps / 10-minute operating point.
//
// Usage:
//
//	experiments [-full] [-seed N] [-only fig8,fig10,fig11,tables,sweeps,ablations]
//
// Output is the textual equivalent of each figure: one row per experiment
// for Figure 8's nine graphs, five-number summaries per boxplot for
// Figure 10, sparkline traces for Figure 11.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"neutrality/internal/figures"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's full scale (100 Mbps, 600 s; takes minutes)")
	seed := flag.Int64("seed", 1, "base random seed")
	only := flag.String("only", "", "comma-separated subset: tables,fig8,fig10,fig11,sweeps,ablations")
	flag.Parse()

	sc, scB := figures.Quick, figures.QuickB
	if *full {
		sc, scB = figures.Full, figures.Full
	}
	want := map[string]bool{}
	if *only != "" {
		for _, part := range strings.Split(*only, ",") {
			want[strings.TrimSpace(part)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	fmt.Printf("Network Neutrality Inference — evaluation reproduction (scale=%.0f%%, %gs runs, seed=%d)\n\n",
		sc.Factor*100, sc.DurationSec, *seed)

	if run("tables") {
		fmt.Println(figures.Table1())
		fmt.Println(figures.Table3())
	}

	if run("fig8") {
		for set := 1; set <= 9; set++ {
			r, err := figures.Fig8(set, sc, *seed)
			if err != nil {
				log.Fatalf("fig8 set %d: %v", set, err)
			}
			fmt.Println(r)
		}
	}

	if run("fig10") {
		r, err := figures.Fig10(scB, *seed)
		if err != nil {
			log.Fatalf("fig10: %v", err)
		}
		fmt.Println(r)
	}

	if run("fig11") {
		r, err := figures.Fig11(scB, *seed)
		if err != nil {
			log.Fatalf("fig11: %v", err)
		}
		fmt.Println(r)
	}

	if run("sweeps") {
		for _, f := range []func(figures.Scale, int64) (*figures.SweepResult, error){
			figures.LossThresholdSweep,
			figures.IntervalSweep,
		} {
			r, err := f(sc, *seed)
			if err != nil {
				log.Fatalf("sweep: %v", err)
			}
			fmt.Println(r)
		}
	}

	if run("ablations") {
		norm, err := figures.AblationNormalization(sc, *seed)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Println(norm)
		clus, err := figures.AblationClustering(*seed)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Println(clus)
		fmt.Println(figures.AblationPairObservations())
		delay, err := figures.AblationDelayMetric(sc, *seed)
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		fmt.Println(delay)
		base, err := figures.BaselineComparison(*seed)
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		fmt.Println(base)
	}

	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
