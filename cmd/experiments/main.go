// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6). By default it runs at a reduced scale (10 Mbps,
// 90 s — identical load shape, fewer packets); pass -full for the paper's
// 100 Mbps / 10-minute operating point.
//
// Usage:
//
//	experiments [-full] [-seed N] [-workers N]
//	            [-only fig8,fig10,fig11,tables,sweeps,ablations]
//
// Independent experiments fan out across a bounded worker pool
// (-workers, default one per CPU); per-unit seeds are derived from
// (seed, unit index), so the output is byte-identical for every
// -workers value. Interrupting the run (Ctrl-C) stops dispatching new
// experiments and exits after the in-flight ones finish.
//
// Output is the textual equivalent of each figure: one row per experiment
// for Figure 8's nine graphs, five-number summaries per boxplot for
// Figure 10, sparkline traces for Figure 11.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"neutrality/internal/figures"
	"neutrality/internal/runner"
)

func main() {
	full := flag.Bool("full", false, "run at the paper's full scale (100 Mbps, 600 s; takes minutes)")
	seed := flag.Int64("seed", 1, "base random seed")
	workers := flag.Int("workers", 0, "parallel experiment workers (0 = one per CPU)")
	only := flag.String("only", "", "comma-separated subset: tables,fig8,fig10,fig11,sweeps,ablations")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	x := figures.Exec{Ctx: ctx, Workers: *workers}

	sc, scB := figures.Quick, figures.QuickB
	if *full {
		sc, scB = figures.Full, figures.Full
	}
	want := map[string]bool{}
	if *only != "" {
		for _, part := range strings.Split(*only, ",") {
			want[strings.TrimSpace(part)] = true
		}
	}
	run := func(name string) bool { return len(want) == 0 || want[name] }

	start := time.Now()
	// The pool width goes to stderr so stdout stays byte-identical for
	// every -workers value.
	fmt.Fprintf(os.Stderr, "workers: %d\n", poolWidth(*workers))
	fmt.Printf("Network Neutrality Inference — evaluation reproduction (scale=%.0f%%, %gs runs, seed=%d)\n\n",
		sc.Factor*100, sc.DurationSec, *seed)

	if run("tables") {
		fmt.Println(figures.Table1())
		fmt.Println(figures.Table3())
	}

	if run("fig8") {
		// All nine sets flattened into one 34-unit batch so the pool
		// stays full across set boundaries; results keep the paper's
		// set and row order.
		results, err := figures.Fig8All(x, sc, *seed)
		if err != nil {
			log.Fatalf("fig8: %v", err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}

	if run("fig10") {
		r, err := figures.Fig10Exec(x, scB, *seed)
		if err != nil {
			log.Fatalf("fig10: %v", err)
		}
		fmt.Println(r)
	}

	if run("fig11") {
		r, err := figures.Fig11Exec(x, scB, *seed)
		if err != nil {
			log.Fatalf("fig11: %v", err)
		}
		fmt.Println(r)
	}

	if run("sweeps") {
		// The two sweeps are independent; run them as parallel units and
		// print in the paper's order.
		sweeps := []func() (*figures.SweepResult, error){
			func() (*figures.SweepResult, error) { return figures.LossThresholdSweepExec(x, sc, *seed) },
			func() (*figures.SweepResult, error) { return figures.IntervalSweepExec(x, sc, *seed) },
		}
		results, err := runner.Map(ctx, *workers, len(sweeps), func(_ context.Context, i int) (*figures.SweepResult, error) {
			return sweeps[i]()
		})
		if err != nil {
			log.Fatalf("sweep: %v", err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}

	if run("ablations") {
		// Five independent ablation/baseline studies as parallel units,
		// printed in the documented order.
		studies := []func() (fmt.Stringer, error){
			func() (fmt.Stringer, error) { return figures.AblationNormalizationExec(x, sc, *seed) },
			func() (fmt.Stringer, error) { return figures.AblationClusteringExec(x, *seed) },
			func() (fmt.Stringer, error) { return figures.AblationPairObservations(), nil },
			func() (fmt.Stringer, error) { return figures.AblationDelayMetric(sc, *seed) },
			func() (fmt.Stringer, error) { return figures.BaselineComparison(*seed) },
		}
		results, err := runner.Map(ctx, *workers, len(studies), func(_ context.Context, i int) (fmt.Stringer, error) {
			return studies[i]()
		})
		if err != nil {
			log.Fatalf("ablation: %v", err)
		}
		for _, r := range results {
			fmt.Println(r)
		}
	}

	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func poolWidth(workers int) int {
	if workers <= 0 {
		return runner.DefaultWorkers()
	}
	return workers
}
