package neutrality

import (
	"neutrality/internal/fleet"
	"neutrality/internal/measure"
	"neutrality/internal/serve"
)

// Streaming inference API: the long-running ingest service that folds
// measurement records online and re-runs the inference at epoch
// boundaries. Streaming any arrival order within an epoch yields
// verdicts byte-identical to the batch pipeline over the same records.

type (
	// ServeConfig parameterizes the streaming service.
	ServeConfig = serve.Config
	// ServeService is the streaming inference state machine.
	ServeService = serve.Service
	// ServeStatus is the service's operational counter snapshot.
	ServeStatus = serve.Status
	// ServeIngestResult reports one ingest batch's effect.
	ServeIngestResult = serve.IngestResult
	// ServeEpochVerdict is the per-epoch inference outcome.
	ServeEpochVerdict = serve.EpochVerdict
	// ServeServer exposes a service over HTTP.
	ServeServer = serve.Server
	// ServeRootConfig parameterizes an aggregation root.
	ServeRootConfig = serve.RootConfig
	// ServeRoot folds leaf epoch reports into a tree-wide verdict.
	ServeRoot = serve.Root
	// ServeRootStatus is the root's operational counter snapshot.
	ServeRootStatus = serve.RootStatus
	// ServeRootServer exposes a root over HTTP.
	ServeRootServer = serve.RootServer
	// ServeEpochReport is one leaf's closed epoch, sealed for shipment.
	ServeEpochReport = serve.EpochReport
	// ServeShipper drains a leaf's report outbox to a root over HTTP.
	ServeShipper = serve.Shipper
	// StreamRecord is one streamed measurement observation.
	StreamRecord = measure.StreamRecord
	// MeasurementSource abstracts where a measurement table comes from
	// (CSV, in-memory, a live streaming service).
	MeasurementSource = measure.Source
	// CSVMeasurementSource reads the batch CSV interchange format.
	CSVMeasurementSource = measure.CSVSource
	// MemMeasurementSource serves an in-memory table.
	MemMeasurementSource = measure.MemSource
	// FleetPartialSummary is the merged-so-far view of a running fleet.
	FleetPartialSummary = fleet.PartialSummary
)

var (
	// ErrServeBusy reports streaming backpressure: the open-epoch
	// buffer is full; retry after a pause.
	ErrServeBusy = serve.ErrBusy
	// ErrServeReportGap reports a leaf epoch report arriving ahead of
	// its leaf's next expected epoch (re-send the earlier epoch first).
	ErrServeReportGap = serve.ErrReportGap
	// ErrMeasureValidation tags malformed measurement input (corrupt
	// CSV, invalid stream record, inconsistent table).
	ErrMeasureValidation = measure.ErrValidation
)

// NewServe builds a streaming inference service (replaying its journal
// when the config names a directory and Resume is set).
func NewServe(cfg ServeConfig) (*ServeService, error) { return serve.New(cfg) }

// NewServeServer wraps a service in the HTTP ingest/verdict protocol.
func NewServeServer(s *ServeService) *ServeServer { return serve.NewServer(s) }

// NewServeRoot builds a multi-instance aggregation root: leaf services
// ship their closed epochs to it, and its per-epoch verdict is
// byte-identical to a single service ingesting the union of the leaf
// streams.
func NewServeRoot(cfg ServeRootConfig) (*ServeRoot, error) { return serve.NewRoot(cfg) }

// NewServeRootServer wraps a root in the HTTP report/verdict protocol.
func NewServeRootServer(r *ServeRoot) *ServeRootServer { return serve.NewRootServer(r) }

// InferSource runs the practical pipeline over any measurement source:
// the streaming analogue of InferMeasured.
func InferSource(n *Network, src MeasurementSource, opts MeasureOptions) (*Result, error) {
	m, err := src.Measurements()
	if err != nil {
		return nil, err
	}
	return InferMeasured(n, m, opts), nil
}
