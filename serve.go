package neutrality

import (
	"neutrality/internal/fleet"
	"neutrality/internal/measure"
	"neutrality/internal/serve"
)

// Streaming inference API: the long-running ingest service that folds
// measurement records online and re-runs the inference at epoch
// boundaries. Streaming any arrival order within an epoch yields
// verdicts byte-identical to the batch pipeline over the same records.

type (
	// ServeConfig parameterizes the streaming service.
	ServeConfig = serve.Config
	// ServeService is the streaming inference state machine.
	ServeService = serve.Service
	// ServeStatus is the service's operational counter snapshot.
	ServeStatus = serve.Status
	// ServeIngestResult reports one ingest batch's effect.
	ServeIngestResult = serve.IngestResult
	// ServeEpochVerdict is the per-epoch inference outcome.
	ServeEpochVerdict = serve.EpochVerdict
	// ServeServer exposes a service over HTTP.
	ServeServer = serve.Server
	// StreamRecord is one streamed measurement observation.
	StreamRecord = measure.StreamRecord
	// MeasurementSource abstracts where a measurement table comes from
	// (CSV, in-memory, a live streaming service).
	MeasurementSource = measure.Source
	// CSVMeasurementSource reads the batch CSV interchange format.
	CSVMeasurementSource = measure.CSVSource
	// MemMeasurementSource serves an in-memory table.
	MemMeasurementSource = measure.MemSource
	// FleetPartialSummary is the merged-so-far view of a running fleet.
	FleetPartialSummary = fleet.PartialSummary
)

var (
	// ErrServeBusy reports streaming backpressure: the open-epoch
	// buffer is full; retry after a pause.
	ErrServeBusy = serve.ErrBusy
	// ErrMeasureValidation tags malformed measurement input (corrupt
	// CSV, invalid stream record, inconsistent table).
	ErrMeasureValidation = measure.ErrValidation
)

// NewServe builds a streaming inference service (replaying its journal
// when the config names a directory and Resume is set).
func NewServe(cfg ServeConfig) (*ServeService, error) { return serve.New(cfg) }

// NewServeServer wraps a service in the HTTP ingest/verdict protocol.
func NewServeServer(s *ServeService) *ServeServer { return serve.NewServer(s) }

// InferSource runs the practical pipeline over any measurement source:
// the streaming analogue of InferMeasured.
func InferSource(n *Network, src MeasurementSource, opts MeasureOptions) (*Result, error) {
	m, err := src.Measurements()
	if err != nil {
		return nil, err
	}
	return InferMeasured(n, m, opts), nil
}
