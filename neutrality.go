// Package neutrality detects and localizes network-neutrality violations
// from external (end-to-end) observations, implementing Zhang, Mara, and
// Argyraki, "Network Neutrality Inference" (SIGCOMM 2014).
//
// # Idea
//
// Classic network tomography assumes the network is neutral — every link
// treats traffic from all paths the same — and forms solvable systems of
// equations y = A·x relating end-to-end pathset observations y to per-link
// performance x. This package turns that on its head: if the network is
// NOT neutral, observations taken from different vantage points are
// mutually inconsistent, and the systems become unsolvable. Carefully
// chosen "slices" of the network turn that inconsistency into localization:
// a link sequence τ whose System 4 is unsolvable is provably non-neutral
// (Lemma 2), with zero false positives under noise-free observations.
//
// # Layout
//
//   - Model: Network (graph + paths + performance classes), Pathset, Perf.
//   - Theory: BuildEquivalent / Observable (Theorem 1), slices and
//     identifiability (Lemmas 2–3).
//   - Algorithm: Infer (Algorithm 1 + Algorithm 2 + clustering),
//     Evaluate (false-negative/false-positive/granularity metrics).
//   - Substrates: a packet-level network emulator with TCP (NewReno,
//     CUBIC), token-bucket policing and shaping (RunExperiment), and a
//     fast synthetic observation generator (NewSampler, ExactY).
//   - Baselines: Boolean tomography, least-squares loss tomography, and
//     NetPolice-style direct probing.
//   - Engine: a parallel experiment runner (internal/runner) that fans
//     independent experiments across a bounded worker pool
//     (RunExperimentBatch, DeriveSeed).
//
// # Parallel sweeps
//
// The paper's evaluation is dozens of independent emulations — Figure
// 8's nine experiment sets, the Section 6.5 robustness sweeps, the
// ablation grid. The experiment engine (internal/runner) treats each
// as a unit, fans units across a bounded worker pool (one worker per
// CPU by default), and collects results in unit order. Three
// properties make the parallel sweeps safe to use for reproduction:
//
//   - Determinism: every unit derives its seed from
//     (baseSeed, unitIndex) — see DeriveSeed — so sweep output is
//     byte-identical for every worker count and completion order.
//   - Ordered collection: printed tables keep the paper's row order no
//     matter which experiment finished first.
//   - Containment: a panicking experiment becomes a per-unit error
//     instead of killing the sweep, and cancelling the context (e.g.
//     Ctrl-C in the CLIs) stops dispatching new experiments and
//     aborts in-flight emulations mid-run (the event loop polls the
//     context between event batches).
//
// Batch entry points: RunExperimentBatch here, lab.RunBatch and the
// figures.*Exec variants internally. Both CLIs expose the pool width:
//
//	go run ./cmd/experiments -workers 8        # whole evaluation, 8-wide
//	go run ./cmd/neutrality emulate -runs 20 -workers 8   # 20 replicas
//
// # Sweep orchestration
//
// Beyond the paper's fixed 34-experiment evaluation, the sweep
// subsystem (internal/grid + internal/sweep, re-exported here as
// Grid/RunSweep/…) executes declarative scenario grids — axes over
// topologies, workload mixes, differentiation policies, and inference
// knobs — as sharded streams of independent cells with one JSONL
// record per cell, bounded-memory online aggregation (streaming
// moments and quantile sketches per axis slice), and resumable
// checkpoints. Any cell is reproducible in isolation from
// (baseSeed, cellIndex), and every artifact is byte-identical for
// every worker count:
//
//	go run ./cmd/neutrality sweep -demo -out /tmp/demo -shards 4
//	go run ./cmd/neutrality sweep -grid grid.json -out d -resume
//
// # Quick start
//
//	net := neutrality.Figure5()                  // a paper topology
//	perf := neutrality.Figure5Perf(net)          // ground truth: l1 throttles class 2
//	res := neutrality.InferExact(net, neutrality.ExactY(net, perf))
//	for _, v := range res.NonNeutralSeqs() {
//	    fmt.Println("non-neutral:", v.SeqNames())
//	}
//
// See examples/ for complete programs, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for the reproduction of every table and figure of the
// paper's evaluation.
package neutrality

import (
	"neutrality/internal/graph"
)

// Core model types, re-exported from the internal model package.
type (
	// Network is the paper's G = (V, L, P) plus performance classes.
	Network = graph.Network
	// Builder incrementally assembles a Network.
	Builder = graph.Builder
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// LinkID identifies a link.
	LinkID = graph.LinkID
	// PathID identifies a path.
	PathID = graph.PathID
	// ClassID identifies a performance class.
	ClassID = graph.ClassID
	// Link is a network edge.
	Link = graph.Link
	// Path is a loop-free end-host-to-end-host link sequence.
	Path = graph.Path
	// Pathset is a set of paths — the unit of external observation.
	Pathset = graph.Pathset
	// Perf is the ground-truth per-link per-class performance table
	// (x = −log P(congestion-free)).
	Perf = graph.Perf
	// LinkSet is a set of links.
	LinkSet = graph.LinkSet
	// NodeKind distinguishes end-hosts from relays.
	NodeKind = graph.NodeKind
)

// Node kinds.
const (
	EndHost = graph.EndHost
	Relay   = graph.Relay
)

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return graph.NewBuilder() }

// NewPathset returns the canonical pathset over the given paths.
func NewPathset(paths ...PathID) Pathset { return graph.NewPathset(paths...) }

// NewPerf allocates an all-zero performance table.
func NewPerf(links, classes int) Perf { return graph.NewPerf(links, classes) }

// NewLinkSet returns a set seeded with the given links.
func NewLinkSet(links ...LinkID) LinkSet { return graph.NewLinkSet(links...) }
